"""Seeded property-style round-trip suite for the ISA substrate.

Per seed, ~5k random instructions (plus random/mutated raw words and whole
programs) are pushed through the full pipeline and three properties are
asserted:

1. **Round-trip fixed point**: ``assemble → decode`` is the identity on
   generator-produced instructions, and for arbitrary words one
   ``decode → assemble`` pass is a fixed point (re-decoding the canonical
   word reproduces the same instruction, and its disassembly is stable).
2. **Table/scan agreement**: the dense decode tables
   (:mod:`repro.isa.decoder`) agree with an independent *linear scan* over
   :data:`~repro.isa.encoding.SPECS` for every probed word -- the check
   that guarded PR 1's table rewrite, now pinned as a regression property.
3. **Totality**: decoding never raises, and every non-illegal decode
   disassembles.

The suite is deterministic (fixed seeds, no hypothesis shrinking) so a
failure reproduces byte-for-byte from the seed printed in the assertion.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.isa.decoder import decode_word
from repro.isa.disassembler import disassemble
from repro.isa.encoding import (
    OPCODE_AMO,
    OPCODE_MISC_MEM,
    OPCODE_OP_IMM_32,
    SPECS,
    InstrFormat,
    InstrSpec,
)
from repro.isa.generator import GeneratorConfig, InstructionGenerator, SeedGenerator
from repro.isa.scenarios import TrapScenarioGenerator
from repro.utils.bits import get_bits

SEEDS = (2026, 2027)
INSTRUCTIONS_PER_SEED = 5000
RAW_WORDS_PER_SEED = 5000
MUTATED_WORDS_PER_SEED = 2000

#: generator tuned to emit only encodable instructions (no raw illegals).
_LEGAL_CONFIG = GeneratorConfig(illegal_word_prob=0.0)


# ------------------------------------------------------------- reference scan
def _linear_match(word: int) -> Optional[InstrSpec]:
    """Reference decoder: a straight scan over SPECS, no tables.

    Mirrors the encoding constraints spec by spec -- deliberately written
    as per-spec predicates (the pre-PR-1 shape) so it shares no code with
    the dense-table construction it cross-checks.
    """
    opcode = word & 0x7F
    funct3 = (word >> 12) & 0x7
    funct7 = (word >> 25) & 0x7F
    rd = (word >> 7) & 0x1F
    rs1 = (word >> 15) & 0x1F
    matches = []
    for spec in SPECS.values():
        if spec.opcode != opcode:
            continue
        if spec.funct3 is None:           # LUI / AUIPC / JAL
            matches.append(spec)
            continue
        if spec.funct3 != funct3:
            continue
        fmt = spec.fmt
        if fmt is InstrFormat.R:
            if spec.funct7 == funct7:
                matches.append(spec)
        elif fmt is InstrFormat.I_SHIFT:
            if spec.opcode == OPCODE_OP_IMM_32:
                if spec.funct7 == funct7:
                    matches.append(spec)
            elif (spec.funct7 >> 1) == (word >> 26) & 0x3F:
                matches.append(spec)
        elif fmt is InstrFormat.SYSTEM:
            if (spec.funct12 == (word >> 20) & 0xFFF
                    and rd == 0 and rs1 == 0):
                matches.append(spec)
        elif fmt is InstrFormat.AMO:
            if opcode == OPCODE_AMO and spec.funct5 == (word >> 27) & 0x1F:
                matches.append(spec)
        elif fmt is InstrFormat.FENCE and spec.mnemonic == "fence.i":
            if opcode == OPCODE_MISC_MEM and rd == 0 and rs1 == 0:
                matches.append(spec)
        else:                              # I / S / B / CSR / CSR_IMM / fence
            matches.append(spec)
    if not matches:
        return None
    assert len(matches) == 1, (
        f"ambiguous decode for word 0x{word:08x}: "
        f"{[m.mnemonic for m in matches]}")
    return matches[0]


def _word_pool(seed: int) -> list:
    """Raw words: uniform randoms plus bit-mutated legal encodings."""
    rng = np.random.default_rng(seed)
    words = [int(w) for w in rng.integers(0, 2**32, size=RAW_WORDS_PER_SEED)]
    generator = InstructionGenerator(_LEGAL_CONFIG, np.random.default_rng(seed + 1))
    for _ in range(MUTATED_WORDS_PER_SEED):
        word = assemble(generator.random_instruction())
        flips = rng.integers(1, 3)
        for _ in range(int(flips)):
            word ^= 1 << int(rng.integers(0, 32))
        words.append(word)
    return words


# ------------------------------------------------------------------ properties
@pytest.mark.parametrize("seed", SEEDS)
def test_generated_instructions_roundtrip_exactly(seed):
    """assemble → decode is the identity on canonical generator output."""
    generator = InstructionGenerator(_LEGAL_CONFIG, np.random.default_rng(seed))
    for index in range(INSTRUCTIONS_PER_SEED):
        instr = generator.random_instruction()
        word = assemble(instr)
        decoded = decode_word(word)
        assert decoded == instr, (
            f"seed {seed}, instruction {index}: {instr} -> 0x{word:08x} "
            f"-> {decoded}")
        assert assemble(decoded) == word


@pytest.mark.parametrize("seed", SEEDS)
def test_decode_assemble_is_a_fixed_point_on_arbitrary_words(seed):
    """One decode→assemble pass canonicalises; after that it's a fixed point."""
    for word in _word_pool(seed):
        instr = decode_word(word)          # totality: never raises
        if instr.is_illegal:
            assert instr.raw == word & 0xFFFF_FFFF
            continue
        canonical = assemble(instr)
        redecoded = decode_word(canonical)
        assert redecoded == instr, (
            f"seed {seed}: 0x{word:08x} decoded to {instr} but its "
            f"canonical word 0x{canonical:08x} re-decodes to {redecoded}")
        assert assemble(redecoded) == canonical
        # The textual rendering is a stable function of the fixed point.
        assert disassemble(redecoded) == disassemble(instr)


@pytest.mark.parametrize("seed", SEEDS)
def test_table_decode_matches_reference_linear_scan(seed):
    """The dense decode tables agree with a straight SPECS scan everywhere."""
    generator = InstructionGenerator(_LEGAL_CONFIG, np.random.default_rng(seed + 2))
    probes = _word_pool(seed)
    probes.extend(assemble(generator.random_instruction()) for _ in range(2000))
    for word in probes:
        reference = _linear_match(word)
        decoded = decode_word(word)
        if reference is None:
            assert decoded.is_illegal, (
                f"seed {seed}: table decoded 0x{word:08x} to "
                f"{decoded.mnemonic!r}, linear scan says illegal")
        else:
            assert not decoded.is_illegal and decoded.mnemonic == reference.mnemonic, (
                f"seed {seed}: table says "
                f"{'illegal' if decoded.is_illegal else decoded.mnemonic!r} "
                f"for 0x{word:08x}, linear scan says {reference.mnemonic!r}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("provider", [SeedGenerator, TrapScenarioGenerator])
def test_whole_programs_roundtrip_through_words(seed, provider):
    """program → words → decode → reassemble reproduces the same words."""
    generator = provider(rng=np.random.default_rng(seed))
    for program in generator.generate_many(25):
        words = program.words()
        decoded = [decode_word(word) for word in words]
        reassembled = tuple(assemble(instr) for instr in decoded)
        assert reassembled == words


def test_every_spec_is_reachable_by_the_linear_scan():
    """Sanity: each mnemonic's canonical encoding maps back to its spec."""
    from repro.isa.instruction import Instruction

    for mnemonic, spec in SPECS.items():
        if spec.fmt is InstrFormat.CSR:
            instr = Instruction(mnemonic, rd=1, rs1=2, csr=0x340)
        elif spec.fmt is InstrFormat.CSR_IMM:
            instr = Instruction(mnemonic, rd=1, imm=3, csr=0x340)
        elif spec.fmt is InstrFormat.FENCE:
            instr = Instruction(mnemonic)
        elif spec.fmt is InstrFormat.SYSTEM:
            instr = Instruction(mnemonic)
        elif spec.fmt is InstrFormat.I_SHIFT:
            instr = Instruction(mnemonic, rd=1, rs1=2, imm=5)
        elif spec.fmt is InstrFormat.B:
            instr = Instruction(mnemonic, rs1=1, rs2=2, imm=8)
        elif spec.fmt is InstrFormat.S:
            instr = Instruction(mnemonic, rs1=1, rs2=2, imm=8)
        elif spec.fmt is InstrFormat.U:
            instr = Instruction(mnemonic, rd=1, imm=0x12345)
        elif spec.fmt is InstrFormat.J:
            instr = Instruction(mnemonic, rd=1, imm=8)
        elif spec.fmt is InstrFormat.AMO:
            instr = Instruction(mnemonic, rd=1, rs1=2, rs2=3)
        else:
            instr = Instruction(mnemonic, rd=1, rs1=2, rs2=3, imm=4)
        word = assemble(instr)
        reference = _linear_match(word)
        assert reference is not None and reference.mnemonic == mnemonic
        assert get_bits(word, 1, 0) == 0b11  # all base encodings end in 11
