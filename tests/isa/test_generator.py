"""Tests for random instruction and seed generation."""

import pytest

from repro.isa.decoder import decode_word
from repro.isa.encoding import InstrClass, spec_for
from repro.isa.generator import (
    DATA_BASE_REGISTERS,
    GeneratorConfig,
    InstructionGenerator,
    SeedGenerator,
    preamble_instructions,
)
from repro.isa.program import DEFAULT_BASE_ADDRESS


class TestGeneratorConfig:
    def test_defaults_valid(self):
        config = GeneratorConfig()
        assert config.min_instructions <= config.max_instructions

    def test_invalid_lengths_raise(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_instructions=0)
        with pytest.raises(ValueError):
            GeneratorConfig(min_instructions=10, max_instructions=5)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            GeneratorConfig(illegal_word_prob=1.5)


class TestInstructionGenerator:
    def test_deterministic_with_seed(self):
        a = [InstructionGenerator(rng=7).random_instruction() for _ in range(20)]
        b = [InstructionGenerator(rng=7).random_instruction() for _ in range(20)]
        assert a == b

    def test_forced_class(self):
        generator = InstructionGenerator(
            GeneratorConfig(illegal_word_prob=0.0), rng=3)
        for _ in range(50):
            instr = generator.random_instruction(cls=InstrClass.BRANCH)
            assert spec_for(instr.mnemonic).cls is InstrClass.BRANCH

    def test_generated_instructions_encode(self):
        generator = InstructionGenerator(rng=11)
        for _ in range(300):
            instr = generator.random_instruction()
            from repro.isa.assembler import encode_instruction

            word = encode_instruction(instr)
            assert 0 <= word < 2**32

    def test_shift_amounts_within_range(self):
        generator = InstructionGenerator(GeneratorConfig(illegal_word_prob=0.0), rng=5)
        for _ in range(200):
            instr = generator.random_instruction(cls=InstrClass.SHIFT)
            limit = 32 if instr.mnemonic.endswith("w") else 64
            if spec_for(instr.mnemonic).fmt.name == "I_SHIFT":
                assert 0 <= instr.imm < limit

    def test_illegal_words_produced_at_high_probability(self):
        generator = InstructionGenerator(GeneratorConfig(illegal_word_prob=1.0), rng=1)
        assert generator.random_instruction().is_illegal

    def test_class_weights_respected(self):
        weights = {cls: 0.0 for cls in InstrClass}
        weights[InstrClass.MUL] = 1.0
        generator = InstructionGenerator(GeneratorConfig(illegal_word_prob=0.0), rng=2)
        for _ in range(30):
            instr = generator.random_instruction(weights=weights)
            assert spec_for(instr.mnemonic).cls is InstrClass.MUL


class TestPreamble:
    def test_sets_up_data_base_registers(self):
        preamble = preamble_instructions()
        destinations = {i.rd for i in preamble}
        assert set(DATA_BASE_REGISTERS) <= destinations

    def test_preamble_is_legal(self):
        from repro.isa.assembler import encode_instruction

        for instr in preamble_instructions():
            word = encode_instruction(instr)
            assert not decode_word(word).is_illegal


class TestSeedGenerator:
    def test_length_range(self):
        config = GeneratorConfig(min_instructions=5, max_instructions=9)
        generator = SeedGenerator(config, rng=0)
        preamble_len = len(preamble_instructions())
        for _ in range(20):
            seed = generator.generate()
            assert preamble_len + 5 <= len(seed) <= preamble_len + 9

    def test_explicit_length(self):
        generator = SeedGenerator(rng=0)
        seed = generator.generate(length=7)
        assert len(seed) == len(preamble_instructions()) + 7

    def test_base_address(self):
        assert SeedGenerator(rng=0).generate().base_address == DEFAULT_BASE_ADDRESS

    def test_generate_many(self):
        seeds = SeedGenerator(rng=0).generate_many(5)
        assert len(seeds) == 5
        assert len({s.program_id for s in seeds}) == 5

    def test_generate_many_negative_raises(self):
        with pytest.raises(ValueError):
            SeedGenerator(rng=0).generate_many(-1)

    def test_deterministic(self):
        a = SeedGenerator(rng=9).generate()
        b = SeedGenerator(rng=9).generate()
        assert a.words() == b.words()

    def test_seed_diversity(self):
        """Randomised per-seed profiles must produce different seeds."""
        generator = SeedGenerator(rng=4)
        seeds = generator.generate_many(10)
        fingerprints = {s.fingerprint() for s in seeds}
        assert len(fingerprints) == 10

    def test_profiles_skew_class_mix(self):
        """With profile randomisation on, class histograms vary across seeds."""
        generator = SeedGenerator(GeneratorConfig(randomize_profile=True), rng=8)
        histograms = []
        for seed in generator.generate_many(6):
            classes = [spec_for(i.mnemonic).cls for i in seed if not i.is_illegal]
            histograms.append(tuple(sorted(
                (cls.value, classes.count(cls)) for cls in set(classes))))
        assert len(set(histograms)) > 1
