"""Tests for the TestProgram container."""

from repro.isa.instruction import Instruction
from repro.isa.program import (
    DEFAULT_BASE_ADDRESS,
    TestProgram,
    next_program_id,
    program_id_scope,
)


def _program(n=3):
    return TestProgram(
        instructions=tuple(Instruction("addi", rd=1, rs1=1, imm=i) for i in range(n)))


class TestBasics:
    def test_length_and_iteration(self):
        program = _program(4)
        assert len(program) == 4
        assert all(isinstance(i, Instruction) for i in program)

    def test_default_base_address(self):
        assert _program().base_address == DEFAULT_BASE_ADDRESS

    def test_end_address(self):
        program = _program(3)
        assert program.end_address() == program.base_address + 12

    def test_words_length(self):
        assert len(_program(5).words()) == 5

    def test_unique_ids(self):
        assert _program().program_id != _program().program_id

    def test_next_program_id_prefix(self):
        assert next_program_id("seed").startswith("seed")

    def test_seed_id_defaults_to_own_id(self):
        program = _program()
        assert program.seed_id == program.program_id


class TestLineage:
    def test_with_instructions_child(self):
        parent = _program(3)
        child = parent.with_instructions(
            list(parent.instructions) + [Instruction("ecall")],
            mutation_op="instr_insert")
        assert child.parent_id == parent.program_id
        assert child.seed_id == parent.seed_id
        assert child.generation == parent.generation + 1
        assert child.mutation_op == "instr_insert"
        assert len(child) == 4
        assert len(parent) == 3  # parent untouched

    def test_grandchild_keeps_seed(self):
        seed = _program()
        child = seed.with_instructions(seed.instructions)
        grandchild = child.with_instructions(child.instructions)
        assert grandchild.seed_id == seed.program_id
        assert grandchild.generation == 2


class TestFingerprint:
    def test_same_content_same_fingerprint(self):
        a = _program(3)
        b = _program(3)
        assert a.program_id != b.program_id
        assert a.fingerprint() == b.fingerprint()

    def test_different_content_differs(self):
        a = _program(3)
        b = _program(4)
        assert a.fingerprint() != b.fingerprint()


class TestProgramIdScope:
    def test_scope_restarts_numbering(self):
        with program_id_scope():
            first = next_program_id()
        with program_id_scope():
            again = next_program_id()
        assert first == again == "t0"

    def test_scopes_nest_and_restore(self):
        outer_before = next_program_id()
        with program_id_scope():
            assert next_program_id() == "t0"
            with program_id_scope():
                assert next_program_id("seed") == "seed0"
            assert next_program_id() == "t1"
        outer_after = next_program_id()
        # the process-global counter kept advancing monotonically
        assert int(outer_after[1:]) == int(outer_before[1:]) + 1


class TestListing:
    def test_listing_lines(self):
        listing = _program(2).listing()
        assert len(listing.splitlines()) == 2
        assert "addi" in listing
