"""Tests for the disassembler (format sanity, not exact toolchain syntax)."""

from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.encoding import SPECS
from repro.isa.generator import InstructionGenerator
from repro.isa.instruction import Instruction


class TestDisassemble:
    def test_r_type(self):
        assert disassemble(Instruction("add", rd=3, rs1=4, rs2=5)) == "add gp, tp, t0"

    def test_load_uses_offset_syntax(self):
        text = disassemble(Instruction("lw", rd=6, rs1=7, imm=8))
        assert text == "lw t1, 8(t2)"

    def test_store(self):
        assert disassemble(Instruction("sd", rs1=2, rs2=8, imm=-16)) == "sd s0, -16(sp)"

    def test_branch(self):
        assert disassemble(Instruction("beq", rs1=1, rs2=2, imm=32)) == "beq ra, sp, 32"

    def test_csr_uses_name(self):
        text = disassemble(Instruction("csrrw", rd=5, rs1=6, csr=0x300))
        assert "mstatus" in text

    def test_illegal(self):
        text = disassemble(Instruction.illegal(0x1234))
        assert "0x00001234" in text and "illegal" in text

    def test_system_instructions_bare(self):
        assert disassemble(Instruction("ecall")) == "ecall"
        assert disassemble(Instruction("fence.i")) == "fence.i"

    def test_amo_with_ordering_bits(self):
        text = disassemble(Instruction("amoadd.w", rd=5, rs1=6, rs2=7, aq=1, rl=1))
        assert text.startswith("amoadd.w.aq.rl")

    def test_every_known_mnemonic_disassembles(self):
        for mnemonic in SPECS:
            text = disassemble(Instruction(mnemonic, rd=1, rs1=2, rs2=3, imm=4, csr=0x300))
            assert mnemonic.split(".")[0] in text

    def test_random_instructions_disassemble(self):
        generator = InstructionGenerator(rng=5)
        for _ in range(200):
            text = disassemble(generator.random_instruction())
            assert isinstance(text, str) and text


class TestDisassembleProgram:
    def test_addresses(self):
        lines = disassemble_program(
            [Instruction("addi", rd=1, rs1=0, imm=1), Instruction("ecall")],
            base_address=0x4000_0000)
        assert lines[0].startswith("0x40000000:")
        assert lines[1].startswith("0x40000004:")
        assert len(lines) == 2
