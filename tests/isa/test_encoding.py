"""Tests for the instruction-spec table."""

import pytest

from repro.isa.encoding import (
    InstrClass,
    InstrFormat,
    SPECS,
    mnemonics,
    mnemonics_of_class,
    mnemonics_of_extension,
    spec_for,
)


class TestSpecTable:
    def test_contains_core_instructions(self):
        for mnemonic in ("add", "addi", "lw", "sd", "beq", "jal", "jalr",
                         "lui", "auipc", "ecall", "ebreak", "fence.i",
                         "csrrw", "mul", "div", "lr.w", "sc.d", "amoadd.w"):
            assert mnemonic in SPECS

    def test_reasonable_size(self):
        # RV64IM + Zicsr + Zifencei + the AMO subset.
        assert 80 <= len(SPECS) <= 120

    def test_unique_encodings(self):
        seen = set()
        for spec in SPECS.values():
            key = (spec.opcode, spec.funct3, spec.funct7, spec.funct12, spec.funct5,
                   spec.fmt)
            assert key not in seen, f"duplicate encoding for {spec.mnemonic}"
            seen.add(key)

    def test_spec_for_case_insensitive(self):
        assert spec_for("ADD") is SPECS["add"]

    def test_spec_for_unknown_raises(self):
        with pytest.raises(KeyError):
            spec_for("bogus")

    def test_mnemonics_sorted_and_complete(self):
        names = mnemonics()
        assert list(names) == sorted(names)
        assert set(names) == set(SPECS)


class TestSpecAttributes:
    def test_branch_class(self):
        assert spec_for("beq").cls is InstrClass.BRANCH
        assert set(mnemonics_of_class(InstrClass.BRANCH)) == {
            "beq", "bne", "blt", "bge", "bltu", "bgeu"}

    def test_load_store_formats(self):
        assert spec_for("lw").fmt is InstrFormat.I
        assert spec_for("sd").fmt is InstrFormat.S

    def test_m_extension(self):
        m_instrs = set(mnemonics_of_extension("M"))
        assert {"mul", "div", "rem", "mulw", "divuw"} <= m_instrs
        assert all(SPECS[m].funct7 == 0x01 for m in m_instrs)

    def test_reads_writes_flags(self):
        assert spec_for("add").writes_rd
        assert spec_for("add").reads_rs1 and spec_for("add").reads_rs2
        assert not spec_for("sd").writes_rd
        assert spec_for("sd").reads_rs2
        assert not spec_for("lui").reads_rs1
        assert not spec_for("jal").reads_rs1

    def test_shift_format(self):
        assert spec_for("slli").fmt is InstrFormat.I_SHIFT
        assert spec_for("sraiw").fmt is InstrFormat.I_SHIFT

    def test_csr_formats(self):
        assert spec_for("csrrw").fmt is InstrFormat.CSR
        assert spec_for("csrrwi").fmt is InstrFormat.CSR_IMM

    def test_amo_funct5(self):
        assert spec_for("lr.w").funct5 == 0x02
        assert spec_for("sc.w").funct5 == 0x03
        assert spec_for("amoswap.d").funct5 == 0x01

    def test_system_funct12(self):
        assert spec_for("ecall").funct12 == 0x000
        assert spec_for("ebreak").funct12 == 0x001
        assert spec_for("mret").funct12 == 0x302
