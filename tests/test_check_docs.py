"""Tests of the docs dead-reference checker (benchmarks/check_docs.py)."""

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_docs",
    Path(__file__).resolve().parents[1] / "benchmarks" / "check_docs.py")
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


def _problems(text, doc_dir):
    return list(check_docs.check_text(text, doc_dir))


class TestRelativeLinks:
    def test_live_link_passes(self, tmp_path):
        (tmp_path / "other.md").write_text("hi")
        assert _problems("see [other](other.md)", tmp_path) == []

    def test_dead_link_reported(self, tmp_path):
        problems = _problems("see [gone](missing.md)", tmp_path)
        assert problems == ["dead link -> missing.md"]

    def test_anchored_link_checks_the_file_part(self, tmp_path):
        (tmp_path / "other.md").write_text("hi")
        assert _problems("[s](other.md#section)", tmp_path) == []
        assert _problems("[s](missing.md#section)", tmp_path) == [
            "dead link -> missing.md"]

    def test_external_links_skipped(self, tmp_path):
        text = "[a](https://example.org) [b](http://example.org) [c](mailto:x@y)"
        assert _problems(text, tmp_path) == []


class TestModuleReferences:
    def test_module_resolves(self):
        assert check_docs.module_resolves("repro.fuzzing.corpus")

    def test_attribute_of_module_resolves(self):
        assert check_docs.module_resolves("repro.exec.CampaignEngine")
        assert check_docs.module_resolves("repro.fuzzing.corpus.CorpusManager")

    def test_dead_module_reported(self, tmp_path):
        problems = _problems("see `repro.no_such_module`", tmp_path)
        assert problems == ["dead module reference -> repro.no_such_module"]

    def test_dead_attribute_reported(self, tmp_path):
        problems = _problems("see `repro.fuzzing.corpus.NoSuchThing`", tmp_path)
        assert problems == [
            "dead module reference -> repro.fuzzing.corpus.NoSuchThing"]

    def test_bare_package_name_is_not_a_reference(self, tmp_path):
        # `repro` alone (no dot) is prose, not a checkable reference.
        assert _problems("the `repro` package", tmp_path) == []


class TestPathReferences:
    def test_repo_relative_path_resolves(self, tmp_path):
        assert _problems("`src/repro/fuzzing/corpus.py`", tmp_path) == []

    def test_src_relative_path_resolves(self, tmp_path):
        # Docs name modules as `repro/fuzzing/corpus.py` (src/ implied).
        assert _problems("`repro/fuzzing/corpus.py`", tmp_path) == []

    def test_dead_path_reported(self, tmp_path):
        problems = _problems("`src/repro/gone.py`", tmp_path)
        assert problems == ["dead path reference -> src/repro/gone.py"]


class TestFencedBlocks:
    def test_fenced_content_is_ignored(self, tmp_path):
        text = ("```bash\n"
                "cat [not a](link.md) `repro.not.real` src/fake.py\n"
                "```\n"
                "prose after\n")
        assert _problems(text, tmp_path) == []

    def test_problems_after_a_fence_still_reported(self, tmp_path):
        text = "```\nok\n```\n[gone](missing.md)\n"
        assert _problems(text, tmp_path) == ["dead link -> missing.md"]


class TestRepoDocs:
    def test_repo_docs_have_no_dead_references(self):
        assert check_docs.check_docs() == []

    def test_empty_docs_dir_fails_loudly(self, tmp_path):
        problems = check_docs.check_docs(tmp_path)
        assert len(problems) == 1 and "no markdown" in problems[0]
