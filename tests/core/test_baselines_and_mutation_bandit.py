"""Tests for the baseline scheduling policies and the mutation-operator bandit."""

from repro.core.bandit.baselines import GreedyPolicy, RoundRobinPolicy, UniformRandomPolicy
from repro.core.config import MABFuzzConfig
from repro.core.mutation_bandit import MutationBanditFuzzer
from repro.fuzzing.base import FuzzerConfig
from repro.rtl.cva6 import CVA6Model


class TestUniformRandomPolicy:
    def test_covers_all_arms(self):
        policy = UniformRandomPolicy(4, rng=0)
        assert {policy.select() for _ in range(200)} == {0, 1, 2, 3}

    def test_ignores_rewards(self):
        policy = UniformRandomPolicy(3, rng=0)
        policy.update(0, 100.0)
        counts = [0, 0, 0]
        for _ in range(300):
            counts[policy.select()] += 1
        assert min(counts) > 50  # still roughly uniform


class TestRoundRobinPolicy:
    def test_cycles(self):
        policy = RoundRobinPolicy(3, rng=0)
        assert [policy.select() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_reset_is_noop(self):
        policy = RoundRobinPolicy(3, rng=0)
        policy.select()
        policy.reset_arm(0)
        assert policy.select() == 1


class TestGreedyPolicy:
    def test_exploits_best_arm(self):
        policy = GreedyPolicy(3, rng=0)
        policy.update(2, 5.0)
        policy.update(1, 1.0)
        assert all(policy.select() == 2 for _ in range(10))

    def test_never_revisits_worse_arm(self):
        """The motivational-example failure mode: pure exploitation sticks."""
        policy = GreedyPolicy(2, rng=0)
        policy.update(0, 1.0)
        policy.update(1, 0.5)
        selections = {policy.select() for _ in range(20)}
        assert selections == {0}

    def test_reset(self):
        policy = GreedyPolicy(2, rng=0)
        policy.update(0, 5.0)
        policy.reset_arm(0)
        assert policy.q_values[0] == 0.0


class TestMutationBanditFuzzer:
    def test_one_arm_per_operator(self):
        fuzzer = MutationBanditFuzzer(
            CVA6Model(bugs=[]), algorithm="exp3",
            config=FuzzerConfig(num_seeds=3, mutants_per_test=2), rng=0)
        assert fuzzer.bandit.num_arms == len(fuzzer.mutation_engine.operator_names)
        assert fuzzer.name == "mutation-bandit:exp3"

    def test_runs_and_rewards_operators(self):
        fuzzer = MutationBanditFuzzer(
            CVA6Model(bugs=[]), algorithm="exp3",
            mab_config=MABFuzzConfig(eta=0.2),
            config=FuzzerConfig(num_seeds=3, mutants_per_test=3), rng=1)
        result = fuzzer.run(40)
        assert result.num_tests == 40
        assert result.coverage_count > 0
        # Operators were actually pulled (mutants were generated and run).
        assert fuzzer.bandit.total_pulls > 0
        assert result.metadata["operator_arms"] == fuzzer.bandit.num_arms

    def test_metadata_names_algorithm(self):
        fuzzer = MutationBanditFuzzer(
            CVA6Model(bugs=[]), algorithm="ucb",
            config=FuzzerConfig(num_seeds=2, mutants_per_test=2), rng=2)
        result = fuzzer.run(10)
        assert result.metadata["algorithm"] == "ucb"
