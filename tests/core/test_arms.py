"""Tests for arms and arm sets."""

import pytest

from repro.core.arms import Arm, ArmSet
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram


def _seed(tag=0):
    return TestProgram(instructions=(Instruction("addi", rd=1, rs1=0, imm=tag),))


class TestArm:
    def test_pool_starts_with_seed(self):
        seed = _seed()
        arm = Arm(index=0, seed=seed)
        assert len(arm.pool) == 1
        assert arm.pool.peek() is seed

    def test_record_pull(self):
        arm = Arm(index=0, seed=_seed())
        arm.record_pull({"a", "b"}, reward=2.0)
        arm.record_pull({"b", "c"}, reward=1.0)
        assert arm.pulls == 2
        assert arm.total_reward == pytest.approx(3.0)
        assert arm.mean_reward == pytest.approx(1.5)
        assert arm.local_coverage == {"a", "b", "c"}

    def test_local_new_points(self):
        arm = Arm(index=0, seed=_seed())
        arm.record_pull({"a"}, reward=1.0)
        assert arm.local_new_points({"a", "b"}) == {"b"}

    def test_mean_reward_zero_when_unpulled(self):
        assert Arm(index=0, seed=_seed()).mean_reward == 0.0

    def test_reset_with(self):
        arm = Arm(index=0, seed=_seed(1))
        arm.record_pull({"a"}, reward=1.0)
        arm.pool.push(_seed(2))
        new_seed = _seed(3)
        arm.reset_with(new_seed)
        assert arm.seed is new_seed
        assert arm.pulls == 0
        assert arm.total_reward == 0.0
        assert arm.local_coverage == set()
        assert arm.resets == 1
        assert arm.generation == 1
        assert len(arm.pool) == 1
        assert arm.pool.peek() is new_seed


class TestArmSet:
    def test_from_generator(self):
        arms = ArmSet.from_generator(SeedGenerator(rng=0), 6)
        assert len(arms) == 6
        assert [arm.index for arm in arms] == list(range(6))

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            ArmSet([])
        with pytest.raises(ValueError):
            ArmSet.from_generator(SeedGenerator(rng=0), 0)

    def test_pool_max_applied(self):
        arms = ArmSet.from_generator(SeedGenerator(rng=0), 2, pool_max=3)
        assert arms[0].pool.max_size == 3

    def test_indexing_and_iteration(self):
        arms = ArmSet([_seed(0), _seed(1)])
        assert arms[1].seed.instructions[0].imm == 1
        assert [a.index for a in arms] == [0, 1]

    def test_reset_arm_and_total_resets(self):
        arms = ArmSet([_seed(0), _seed(1)])
        arms.reset_arm(0, _seed(9))
        arms.reset_arm(1, _seed(8))
        arms.reset_arm(1, _seed(7))
        assert arms.total_resets == 3
        assert arms[1].seed.instructions[0].imm == 7
