"""Tests for the MAB scheduler (bandit + arms + reward + monitor glue)."""

import pytest

from repro.core.arms import ArmSet
from repro.core.bandit.baselines import RoundRobinPolicy
from repro.core.bandit.ucb import UCBBandit
from repro.core.monitor import SaturationMonitor
from repro.core.reward import RewardComputer
from repro.core.scheduler import MABScheduler
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram


def _seed(tag):
    return TestProgram(instructions=(Instruction("addi", rd=1, rs1=0, imm=tag),))


def _scheduler(num_arms=3, gamma=2, bandit=None, metric="global"):
    seeds = [_seed(i) for i in range(num_arms)]
    replacement_counter = {"count": 100}

    def seed_provider():
        replacement_counter["count"] += 1
        return _seed(replacement_counter["count"])

    scheduler = MABScheduler(
        bandit=bandit or RoundRobinPolicy(num_arms, rng=0),
        arms=ArmSet(seeds),
        reward=RewardComputer(alpha=0.25),
        monitor=SaturationMonitor(gamma=gamma),
        seed_provider=seed_provider,
        saturation_metric=metric,
    )
    return scheduler


class TestConstruction:
    def test_arm_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            MABScheduler(
                bandit=UCBBandit(4),
                arms=ArmSet([_seed(0), _seed(1)]),
                reward=RewardComputer(),
                monitor=SaturationMonitor(),
                seed_provider=lambda: _seed(0),
            )

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            _scheduler(metric="weird")


class TestSelection:
    def test_select_returns_arm_object(self):
        scheduler = _scheduler()
        arm = scheduler.select()
        assert arm is scheduler.arms[arm.index]

    def test_round_robin_order(self):
        scheduler = _scheduler(num_arms=3)
        assert [scheduler.select().index for _ in range(6)] == [0, 1, 2, 0, 1, 2]


class TestUpdate:
    def test_reward_flows_into_bandit_and_arm(self):
        bandit = UCBBandit(2, rng=0)
        scheduler = _scheduler(num_arms=2, bandit=bandit)
        arm = scheduler.arms[0]
        update = scheduler.update(arm, test_coverage={"a", "b"},
                                  global_new_points={"a", "b"})
        assert update.reward_value == pytest.approx(2.0)  # 0.25*2 + 0.75*2
        assert not update.was_reset
        assert arm.pulls == 1
        assert arm.local_coverage == {"a", "b"}
        assert bandit.q_values[0] == pytest.approx(2.0)

    def test_local_only_reward(self):
        scheduler = _scheduler(num_arms=2)
        arm = scheduler.arms[0]
        update = scheduler.update(arm, test_coverage={"a"}, global_new_points=set())
        assert update.reward.local_count == 1
        assert update.reward.global_count == 0
        assert update.reward_value == pytest.approx(0.25)

    def test_saturated_arm_gets_reset(self):
        bandit = UCBBandit(2, rng=0)
        scheduler = _scheduler(num_arms=2, gamma=2, bandit=bandit)
        arm = scheduler.arms[0]
        old_seed = arm.seed
        bandit.update(0, 1.0)  # give the arm some history to be cleared
        scheduler.update(arm, {"a"}, set())   # local-new only -> global count 0
        assert not scheduler.arms[0].resets
        update = scheduler.update(arm, {"a"}, set())
        assert update.was_reset
        assert update.replacement_seed_id is not None
        assert scheduler.arms[0].seed is not old_seed
        assert scheduler.arms[0].local_coverage == set()
        assert bandit.arm_pulls[0] == 0 and bandit.q_values[0] == 0.0
        assert scheduler.total_resets == 1

    def test_local_metric_uses_local_counts(self):
        scheduler = _scheduler(num_arms=1, gamma=2, metric="local")
        arm = scheduler.arms[0]
        # Local-new coverage keeps the arm alive under the "local" metric.
        scheduler.update(arm, {"a"}, set())
        scheduler.update(arm, {"b"}, set())
        assert scheduler.total_resets == 0
        # Two pulls with nothing new at all -> reset.
        scheduler.update(arm, {"a"}, set())
        update = scheduler.update(arm, {"a", "b"}, set())
        assert update.was_reset

    def test_global_metric_resets_despite_local_news(self):
        scheduler = _scheduler(num_arms=1, gamma=2, metric="global")
        arm = scheduler.arms[0]
        scheduler.update(arm, {"a"}, set())
        update = scheduler.update(arm, {"b"}, set())
        assert update.was_reset

    def test_monitor_cleared_after_reset(self):
        scheduler = _scheduler(num_arms=1, gamma=2)
        arm = scheduler.arms[0]
        scheduler.update(arm, set(), set())
        scheduler.update(arm, set(), set())          # reset happens here
        assert scheduler.total_resets == 1
        scheduler.update(arm, set(), set())          # fresh window, not yet saturated
        assert scheduler.total_resets == 1
        scheduler.update(arm, set(), set())
        assert scheduler.total_resets == 2
