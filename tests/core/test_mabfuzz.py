"""Tests for the MABFuzz fuzzer itself."""

import pytest

from repro.core.bandit.epsilon_greedy import EpsilonGreedyBandit
from repro.core.config import MABFuzzConfig
from repro.core.mabfuzz import MABFuzz
from repro.fuzzing.base import FuzzerConfig
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel


@pytest.fixture
def small_fuzzer_config():
    return FuzzerConfig(num_seeds=3, mutants_per_test=2)


@pytest.fixture
def small_mab_config():
    return MABFuzzConfig(num_arms=4, gamma=2, arm_pool_max=16)


class TestConstruction:
    def test_name_includes_algorithm(self, small_fuzzer_config, small_mab_config):
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="ucb",
                         mab_config=small_mab_config,
                         config=small_fuzzer_config, rng=0)
        assert fuzzer.name == "mabfuzz:ucb"

    def test_arm_count_matches_config(self, small_fuzzer_config, small_mab_config):
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="exp3",
                         mab_config=small_mab_config,
                         config=small_fuzzer_config, rng=0)
        assert len(fuzzer.arms) == small_mab_config.num_arms
        assert fuzzer.bandit.num_arms == small_mab_config.num_arms

    def test_exp3_normalizer_is_coverage_space_size(self, small_mab_config):
        dut = RocketModel(bugs=[])
        fuzzer = MABFuzz(dut, algorithm="exp3", mab_config=small_mab_config, rng=0)
        assert fuzzer.bandit.reward_normalizer == dut.total_coverage_points

    def test_custom_bandit_instance(self, small_fuzzer_config):
        bandit = EpsilonGreedyBandit(5, epsilon=0.5, rng=0)
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm=bandit,
                         mab_config=MABFuzzConfig(num_arms=5),
                         config=small_fuzzer_config, rng=0)
        assert fuzzer.bandit is bandit
        assert fuzzer.name == "mabfuzz:egreedy"

    def test_arm_pools_start_with_their_seed(self, small_fuzzer_config, small_mab_config):
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="ucb",
                         mab_config=small_mab_config,
                         config=small_fuzzer_config, rng=0)
        for arm in fuzzer.arms:
            assert len(arm.pool) == 1
            assert arm.pool.peek() is arm.seed


class TestFuzzingLoop:
    def test_fuzz_one_mutates_into_selected_arm(self, small_fuzzer_config,
                                                small_mab_config):
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="roundrobin",
                         mab_config=small_mab_config,
                         config=small_fuzzer_config, rng=0)
        fuzzer.fuzz_one()
        # Round-robin picked arm 0; its seed was consumed and replaced by mutants.
        arm = fuzzer.arms[0]
        assert len(arm.pool) == small_fuzzer_config.mutants_per_test
        assert arm.pulls == 1
        assert arm.local_coverage

    def test_run_produces_result_with_metadata(self, small_fuzzer_config,
                                               small_mab_config):
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="ucb",
                         mab_config=small_mab_config,
                         config=small_fuzzer_config, rng=1)
        result = fuzzer.run(25)
        assert result.fuzzer_name == "mabfuzz:ucb"
        assert result.num_tests == 25
        assert result.coverage_count > 0
        assert result.metadata["algorithm"] == "ucb"
        assert result.metadata["num_arms"] == small_mab_config.num_arms
        assert result.metadata["alpha"] == small_mab_config.alpha
        assert "total_resets" in result.metadata

    def test_deterministic_given_seed(self, small_fuzzer_config, small_mab_config):
        runs = []
        for _ in range(2):
            fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="exp3",
                             mab_config=small_mab_config,
                             config=small_fuzzer_config, rng=1234)
            runs.append(fuzzer.run(20))
        assert runs[0].coverage_count == runs[1].coverage_count
        assert [s.covered for s in runs[0].coverage_curve] == \
            [s.covered for s in runs[1].coverage_curve]

    def test_resets_happen_under_tight_gamma(self, small_fuzzer_config):
        mab_config = MABFuzzConfig(num_arms=2, gamma=1, arm_pool_max=8)
        fuzzer = MABFuzz(RocketModel(bugs=[]), algorithm="ucb",
                         mab_config=mab_config, config=small_fuzzer_config, rng=5)
        fuzzer.run(60)
        assert fuzzer.scheduler.total_resets > 0

    def test_no_resets_when_gamma_disabled(self, small_fuzzer_config):
        mab_config = MABFuzzConfig(num_arms=2, gamma=None, arm_pool_max=8)
        fuzzer = MABFuzz(RocketModel(bugs=[]), algorithm="ucb",
                         mab_config=mab_config, config=small_fuzzer_config, rng=5)
        fuzzer.run(40)
        assert fuzzer.scheduler.total_resets == 0

    def test_every_algorithm_runs(self, small_fuzzer_config, small_mab_config):
        for algorithm in ("egreedy", "ucb", "exp3", "uniform", "roundrobin", "greedy"):
            fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm=algorithm,
                             mab_config=small_mab_config,
                             config=small_fuzzer_config, rng=2)
            result = fuzzer.run(8)
            assert result.num_tests == 8
            assert result.coverage_count > 0

    def test_arm_pool_cap_enforced(self, small_fuzzer_config):
        mab_config = MABFuzzConfig(num_arms=2, gamma=None, arm_pool_max=4)
        fuzzer = MABFuzz(CVA6Model(bugs=[]), algorithm="roundrobin",
                         mab_config=mab_config, config=small_fuzzer_config, rng=3)
        fuzzer.run(30)
        for arm in fuzzer.arms:
            assert len(arm.pool) <= 4

    def test_detects_bug_with_mab_scheduling(self):
        fuzzer = MABFuzz(CVA6Model(bugs=["V5"]), algorithm="ucb",
                         mab_config=MABFuzzConfig(num_arms=4),
                         config=FuzzerConfig(num_seeds=4), rng=11)
        result = fuzzer.run(80)
        assert "V5" in result.bug_detections
