"""Tests for the MAB algorithms (ε-greedy, UCB, EXP3) and their reset feature."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bandit.base import BanditAlgorithm
from repro.core.bandit.epsilon_greedy import EpsilonGreedyBandit
from repro.core.bandit.exp3 import EXP3Bandit
from repro.core.bandit.factory import available_bandits, make_bandit
from repro.core.bandit.ucb import UCBBandit
from repro.core.config import MABFuzzConfig

ALL_ALGORITHMS = [
    lambda rng=None: EpsilonGreedyBandit(5, epsilon=0.1, rng=rng),
    lambda rng=None: UCBBandit(5, rng=rng),
    lambda rng=None: EXP3Bandit(5, eta=0.2, rng=rng),
]


def _bandit_simulation(bandit: BanditAlgorithm, means, steps=800, rng_seed=0):
    """Simulate a stationary Bernoulli bandit; return per-arm pull counts."""
    rng = np.random.default_rng(rng_seed)
    pulls = [0] * bandit.num_arms
    for _ in range(steps):
        arm = bandit.select()
        reward = float(rng.random() < means[arm])
        bandit.update(arm, reward)
        pulls[arm] += 1
    return pulls


class TestCommonInterface:
    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_select_returns_valid_arm(self, factory):
        bandit = factory(rng=1)
        for _ in range(50):
            assert 0 <= bandit.select() < bandit.num_arms

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_update_out_of_range_raises(self, factory):
        with pytest.raises(IndexError):
            factory(rng=1).update(99, 1.0)

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_reset_out_of_range_raises(self, factory):
        with pytest.raises(IndexError):
            factory(rng=1).reset_arm(-1)

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_pull_bookkeeping(self, factory):
        bandit = factory(rng=1)
        for _ in range(10):
            bandit.update(bandit.select(), 0.5)
        assert bandit.total_pulls == 10
        assert sum(bandit.pull_counts) == 10

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_snapshot_has_core_fields(self, factory):
        snapshot = factory(rng=1).snapshot()
        assert snapshot["num_arms"] == 5
        assert "pull_counts" in snapshot

    @pytest.mark.parametrize("factory", ALL_ALGORITHMS)
    def test_learns_best_arm(self, factory):
        """After many pulls, the clearly-best arm is pulled most often."""
        bandit = factory(rng=7)
        means = [0.05, 0.1, 0.05, 0.9, 0.1]
        pulls = _bandit_simulation(bandit, means, steps=800, rng_seed=3)
        assert pulls[3] == max(pulls)
        assert pulls[3] > 0.4 * sum(pulls)

    def test_invalid_num_arms(self):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(0)


class TestEpsilonGreedy:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedyBandit(3, epsilon=1.5)

    def test_greedy_when_epsilon_zero(self):
        bandit = EpsilonGreedyBandit(3, epsilon=0.0, rng=0)
        bandit.update(1, 10.0)
        assert all(bandit.select() == 1 for _ in range(20))

    def test_sample_average_update(self):
        bandit = EpsilonGreedyBandit(2, epsilon=0.0, rng=0)
        bandit.update(0, 4.0)
        bandit.update(0, 8.0)
        assert bandit.q_values[0] == pytest.approx(6.0)

    def test_reset_clears_value_and_count(self):
        bandit = EpsilonGreedyBandit(2, epsilon=0.0, rng=0)
        bandit.update(0, 4.0)
        bandit.reset_arm(0)
        assert bandit.q_values[0] == 0.0
        assert bandit.arm_pulls[0] == 0

    def test_explores_with_epsilon_one(self):
        bandit = EpsilonGreedyBandit(4, epsilon=1.0, rng=0)
        bandit.update(2, 100.0)
        selections = {bandit.select() for _ in range(200)}
        assert selections == {0, 1, 2, 3}


class TestUCB:
    def test_unpulled_arms_selected_first(self):
        bandit = UCBBandit(4, rng=0)
        seen = set()
        for _ in range(4):
            arm = bandit.select()
            seen.add(arm)
            bandit.update(arm, 0.0)
        assert seen == {0, 1, 2, 3}

    def test_reset_arm_is_repulled_immediately(self):
        bandit = UCBBandit(3, rng=0)
        for _ in range(9):
            bandit.update(bandit.select(), 1.0)
        bandit.reset_arm(1)
        assert bandit.select() == 1  # infinite confidence bonus

    def test_confidence_bonus_shrinks_with_pulls(self):
        bandit = UCBBandit(2, rng=0)
        bandit.update(0, 0.0)
        bandit.update(1, 0.0)
        for _ in range(50):
            bandit.update(0, 0.0)
        # Arm 1 has far fewer pulls, so its bonus dominates.
        assert bandit.select() == 1

    def test_invalid_exploration(self):
        with pytest.raises(ValueError):
            UCBBandit(2, exploration=0.0)


class TestEXP3:
    def test_probabilities_sum_to_one(self):
        bandit = EXP3Bandit(6, eta=0.3, rng=0)
        for _ in range(30):
            bandit.update(bandit.select(), 0.4)
            assert sum(bandit.probabilities()) == pytest.approx(1.0)

    def test_probabilities_have_uniform_floor(self):
        bandit = EXP3Bandit(4, eta=0.2, rng=0)
        for _ in range(100):
            bandit.update(0, 1.0)
        floor = bandit.eta / bandit.num_arms
        assert all(p >= floor - 1e-12 for p in bandit.probabilities())

    def test_rewarded_arm_gains_probability(self):
        bandit = EXP3Bandit(3, eta=0.2, rng=0)
        before = bandit.probabilities()[0]
        for _ in range(20):
            bandit.update(0, 1.0)
        assert bandit.probabilities()[0] > before

    def test_reward_normalisation(self):
        small = EXP3Bandit(2, eta=0.5, reward_normalizer=1.0, rng=0)
        large = EXP3Bandit(2, eta=0.5, reward_normalizer=100.0, rng=0)
        small.update(0, 1.0)
        large.update(0, 100.0)
        assert small.weights[0] == pytest.approx(large.weights[0])

    def test_reset_sets_average_weight(self):
        bandit = EXP3Bandit(3, eta=0.2, rng=0)
        bandit.weights = [4.0, 1.0, 1.0]
        bandit.reset_arm(0)
        assert bandit.weights[0] == pytest.approx(1.0)

    def test_reset_single_arm(self):
        bandit = EXP3Bandit(1, eta=0.2, rng=0)
        bandit.weights = [9.0]
        bandit.reset_arm(0)
        assert bandit.weights[0] == 1.0

    def test_weights_rescaled_when_huge(self):
        bandit = EXP3Bandit(2, eta=1.0, reward_normalizer=1.0, rng=0)
        bandit.weights = [1e13, 1.0]
        bandit._rescale_if_needed()
        assert max(bandit.weights) <= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EXP3Bandit(2, eta=0.0)
        with pytest.raises(ValueError):
            EXP3Bandit(2, reward_normalizer=0.0)


class TestFactory:
    def test_available(self):
        assert set(available_bandits()) == {"egreedy", "ucb", "exp3", "uniform",
                                            "roundrobin", "greedy"}

    def test_aliases(self):
        assert isinstance(make_bandit("epsilon-greedy", 4), EpsilonGreedyBandit)
        assert isinstance(make_bandit("UCB1", 4), UCBBandit)
        assert isinstance(make_bandit("exp3", 4), EXP3Bandit)

    def test_config_parameters_forwarded(self):
        config = MABFuzzConfig(epsilon=0.3, eta=0.7)
        egreedy = make_bandit("egreedy", 4, config=config)
        exp3 = make_bandit("exp3", 4, config=config, reward_normalizer=50.0)
        assert egreedy.epsilon == pytest.approx(0.3)
        assert exp3.eta == pytest.approx(0.7)
        assert exp3.reward_normalizer == pytest.approx(50.0)

    def test_instance_passthrough(self):
        bandit = UCBBandit(4)
        assert make_bandit(bandit, 4) is bandit
        with pytest.raises(ValueError):
            make_bandit(bandit, 5)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_bandit("thompson", 4)


# ----------------------------------------------------------------- properties
@given(rewards=st.lists(st.floats(0, 1), min_size=1, max_size=50),
       algorithm=st.sampled_from(["egreedy", "ucb", "exp3"]))
@settings(max_examples=60, deadline=None)
def test_update_select_never_crash_and_stay_in_range(rewards, algorithm):
    bandit = make_bandit(algorithm, 4, rng=0)
    for reward in rewards:
        arm = bandit.select()
        assert 0 <= arm < 4
        bandit.update(arm, reward)
    assert bandit.total_pulls == len(rewards)


@given(reset_points=st.lists(st.integers(0, 3), min_size=1, max_size=10),
       algorithm=st.sampled_from(["egreedy", "ucb", "exp3"]))
@settings(max_examples=40, deadline=None)
def test_reset_keeps_algorithms_usable(reset_points, algorithm):
    bandit = make_bandit(algorithm, 4, rng=1)
    for arm_to_reset in reset_points:
        for _ in range(3):
            bandit.update(bandit.select(), 0.5)
        bandit.reset_arm(arm_to_reset)
    arm = bandit.select()
    assert 0 <= arm < 4
    if algorithm == "exp3":
        assert all(w > 0 for w in bandit.weights)
