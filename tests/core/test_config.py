"""Tests for the MABFuzz configuration."""

import pytest

from repro.core.config import MABFuzzConfig


class TestDefaults:
    def test_paper_values(self):
        """Defaults follow Sec. IV-A of the paper."""
        config = MABFuzzConfig()
        assert config.num_arms == 10
        assert config.alpha == pytest.approx(0.25)
        assert config.gamma == 3
        assert config.eta == pytest.approx(0.1)

    def test_frozen(self):
        config = MABFuzzConfig()
        with pytest.raises(Exception):
            config.alpha = 0.5  # type: ignore[misc]


class TestValidation:
    def test_num_arms(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(num_arms=0)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(alpha=1.5)
        with pytest.raises(ValueError):
            MABFuzzConfig(alpha=-0.1)

    def test_gamma(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(gamma=0)
        assert MABFuzzConfig(gamma=None).gamma is None

    def test_epsilon_eta(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(epsilon=2.0)
        with pytest.raises(ValueError):
            MABFuzzConfig(eta=0.0)

    def test_saturation_metric(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(saturation_metric="bogus")
        assert MABFuzzConfig(saturation_metric="local").saturation_metric == "local"

    def test_arm_pool_max(self):
        with pytest.raises(ValueError):
            MABFuzzConfig(arm_pool_max=0)
        assert MABFuzzConfig(arm_pool_max=None).arm_pool_max is None
