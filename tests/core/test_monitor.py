"""Tests for the γ-window saturation monitor and the grid progress monitor."""

import pytest
from hypothesis import given, strategies as st

from repro.core.monitor import ProgressMonitor, SaturationMonitor


class TestSaturationMonitor:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            SaturationMonitor(gamma=0)

    def test_not_saturated_before_window_filled(self):
        monitor = SaturationMonitor(gamma=3)
        monitor.record(0, 0)
        monitor.record(0, 0)
        assert not monitor.is_saturated(0)

    def test_saturated_after_gamma_zero_pulls(self):
        monitor = SaturationMonitor(gamma=3)
        for _ in range(3):
            monitor.record(0, 0)
        assert monitor.is_saturated(0)

    def test_any_new_coverage_resets_streak(self):
        monitor = SaturationMonitor(gamma=3)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.record(0, 4)
        assert not monitor.is_saturated(0)
        monitor.record(0, 0)
        monitor.record(0, 0)
        assert not monitor.is_saturated(0)  # window is [0, 4, 0] then [4, 0, 0]
        monitor.record(0, 0)
        assert monitor.is_saturated(0)

    def test_per_arm_isolation(self):
        monitor = SaturationMonitor(gamma=2)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.record(1, 5)
        assert monitor.is_saturated(0)
        assert not monitor.is_saturated(1)

    def test_clear(self):
        monitor = SaturationMonitor(gamma=2)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.clear(0)
        assert not monitor.is_saturated(0)
        assert monitor.window(0) == []

    def test_window_contents(self):
        monitor = SaturationMonitor(gamma=3)
        for count in (5, 0, 2, 1):
            monitor.record(0, count)
        assert monitor.window(0) == [0, 2, 1]

    def test_gamma_none_disables_resets(self):
        monitor = SaturationMonitor(gamma=None)
        for _ in range(50):
            monitor.record(0, 0)
        assert not monitor.is_saturated(0)

    def test_unknown_arm_not_saturated(self):
        assert not SaturationMonitor(gamma=2).is_saturated(7)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SaturationMonitor(gamma=2).record(0, -1)


class TestProgressMonitor:
    def _monitor(self, lines=None):
        clock = iter(float(i) for i in range(100))
        return ProgressMonitor(sink=lines.append if lines is not None else None,
                               clock=lambda: next(clock))

    def test_validation(self):
        monitor = ProgressMonitor()
        with pytest.raises(ValueError):
            monitor.start(total_trials=-1)
        with pytest.raises(ValueError):
            monitor.start(total_trials=2, restored_trials=3)

    def test_counts_and_remaining(self):
        monitor = self._monitor()
        monitor.start(total_trials=4, restored_trials=1)
        assert monitor.completed_trials == 1
        assert monitor.remaining_trials == 3
        monitor.trial_completed()
        assert monitor.completed_trials == 2
        assert monitor.remaining_trials == 2

    def test_eta_uses_observed_throughput_only(self):
        # Restored trials took no wall-clock, so they must not skew the ETA.
        monitor = self._monitor()
        monitor.start(total_trials=5, restored_trials=2)
        assert monitor.eta_seconds() is None  # nothing ran yet
        monitor.trial_completed()  # one trial per clock tick
        eta = monitor.eta_seconds()
        assert eta == pytest.approx(2.0)  # 2 remaining at 1 trial/s

    def test_restore_rebases_clock_so_eta_excludes_restore_time(self):
        # Regression: on --resume the engine starts the monitor, spends a
        # while loading/salvaging the journal, then credits the restored
        # trials.  eta_seconds divides elapsed by the trials run *since*
        # restore, so elapsed must be measured from the restore boundary
        # -- it used to include the restore, inflating the first ETAs
        # after a large resume.
        now = [0.0]
        lines = []
        monitor = ProgressMonitor(sink=lines.append, clock=lambda: now[0])
        monitor.start(total_trials=10, backend="serial")
        now[0] = 100.0  # a 100s journal restore
        monitor.restore_completed(8)
        assert monitor.eta_seconds() is None  # nothing ran yet
        now[0] = 101.0  # first executed trial lands one second later
        monitor.trial_completed()
        assert monitor.eta_seconds() == pytest.approx(1.0)  # 1 left at 1/s
        assert "grid: 10 trials on serial" in lines[0]
        assert "8/10 trials restored from checkpoint" in lines[1]

    def test_restore_completed_validation(self):
        monitor = self._monitor()
        monitor.start(total_trials=2)
        with pytest.raises(ValueError):
            monitor.restore_completed(3)
        with pytest.raises(ValueError):
            monitor.restore_completed(-1)

    def test_eta_zero_when_done(self):
        monitor = self._monitor()
        monitor.start(total_trials=1)
        monitor.trial_completed()
        assert monitor.eta_seconds() == 0.0

    def test_cache_hit_rate_aggregates_metadata(self):
        monitor = self._monitor()
        monitor.start(total_trials=2)
        monitor.trial_completed(metadata={"golden_cache_hits": 3,
                                          "golden_cache_misses": 1})
        monitor.trial_completed(metadata={"golden_cache_hits": 1,
                                          "golden_cache_misses": 3})
        assert monitor.golden_cache_hit_rate() == pytest.approx(0.5)

    def test_hit_rate_none_without_data(self):
        monitor = self._monitor()
        monitor.start(total_trials=1)
        assert monitor.golden_cache_hit_rate() is None

    def test_start_resets_cache_stats_between_grids(self):
        # One engine (and monitor) runs several grids back to back; each
        # grid's reported hit rate must not inherit the previous grid's.
        monitor = self._monitor()
        monitor.start(total_trials=1)
        monitor.trial_completed(metadata={"golden_cache_hits": 9,
                                          "golden_cache_misses": 1})
        monitor.start(total_trials=1)
        assert monitor.golden_cache_hit_rate() is None
        monitor.trial_completed(metadata={"golden_cache_hits": 0,
                                          "golden_cache_misses": 4})
        assert monitor.golden_cache_hit_rate() == pytest.approx(0.0)

    def test_sink_receives_status_lines(self):
        lines = []
        monitor = self._monitor(lines)
        monitor.start(total_trials=2, restored_trials=1, backend="serial")
        monitor.trial_completed(label="trial 1")
        assert "2 trials on serial (1 restored from checkpoint)" in lines[0]
        assert "trials 2/2" in lines[1] and "trial 1" in lines[1]

    def test_render_without_start(self):
        assert "trials 0/0" in ProgressMonitor().render()

    def test_worker_cache_stats_snapshot(self):
        monitor = self._monitor()
        monitor.start(total_trials=2)
        assert monitor.dut_cache_hit_rate() is None
        monitor.update_cache_stats({"dut_cache_hits": 3,
                                    "dut_cache_misses": 1,
                                    "dut_cache_evictions": 2,
                                    "shared_golden_evictions": 1})
        assert monitor.dut_cache_hit_rate() == pytest.approx(0.75)
        assert monitor.cache_evictions() == 3
        line = monitor.render()
        assert "dut-cache 75% hit" in line
        assert "3 evicted" in line
        # Snapshot semantics: the engine passes running totals, so a new
        # update replaces rather than accumulates.
        monitor.update_cache_stats({"dut_cache_hits": 4,
                                    "dut_cache_misses": 4})
        assert monitor.dut_cache_hit_rate() == pytest.approx(0.5)
        assert monitor.cache_evictions() == 0

    def test_worker_cache_stats_reset_between_grids(self):
        monitor = self._monitor()
        monitor.start(total_trials=1)
        monitor.update_cache_stats({"dut_cache_hits": 5,
                                    "dut_cache_misses": 5})
        monitor.start(total_trials=1)
        assert monitor.dut_cache_hit_rate() is None
        assert "dut-cache" not in monitor.render()


@given(counts=st.lists(st.integers(0, 5), min_size=1, max_size=30),
       gamma=st.integers(1, 5))
def test_saturation_matches_trailing_window(counts, gamma):
    monitor = SaturationMonitor(gamma=gamma)
    for count in counts:
        monitor.record(3, count)
    expected = len(counts) >= gamma and all(c == 0 for c in counts[-gamma:])
    assert monitor.is_saturated(3) == expected
