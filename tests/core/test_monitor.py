"""Tests for the γ-window saturation monitor (Sec. III-C)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.monitor import SaturationMonitor


class TestSaturationMonitor:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            SaturationMonitor(gamma=0)

    def test_not_saturated_before_window_filled(self):
        monitor = SaturationMonitor(gamma=3)
        monitor.record(0, 0)
        monitor.record(0, 0)
        assert not monitor.is_saturated(0)

    def test_saturated_after_gamma_zero_pulls(self):
        monitor = SaturationMonitor(gamma=3)
        for _ in range(3):
            monitor.record(0, 0)
        assert monitor.is_saturated(0)

    def test_any_new_coverage_resets_streak(self):
        monitor = SaturationMonitor(gamma=3)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.record(0, 4)
        assert not monitor.is_saturated(0)
        monitor.record(0, 0)
        monitor.record(0, 0)
        assert not monitor.is_saturated(0)  # window is [0, 4, 0] then [4, 0, 0]
        monitor.record(0, 0)
        assert monitor.is_saturated(0)

    def test_per_arm_isolation(self):
        monitor = SaturationMonitor(gamma=2)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.record(1, 5)
        assert monitor.is_saturated(0)
        assert not monitor.is_saturated(1)

    def test_clear(self):
        monitor = SaturationMonitor(gamma=2)
        monitor.record(0, 0)
        monitor.record(0, 0)
        monitor.clear(0)
        assert not monitor.is_saturated(0)
        assert monitor.window(0) == []

    def test_window_contents(self):
        monitor = SaturationMonitor(gamma=3)
        for count in (5, 0, 2, 1):
            monitor.record(0, count)
        assert monitor.window(0) == [0, 2, 1]

    def test_gamma_none_disables_resets(self):
        monitor = SaturationMonitor(gamma=None)
        for _ in range(50):
            monitor.record(0, 0)
        assert not monitor.is_saturated(0)

    def test_unknown_arm_not_saturated(self):
        assert not SaturationMonitor(gamma=2).is_saturated(7)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SaturationMonitor(gamma=2).record(0, -1)


@given(counts=st.lists(st.integers(0, 5), min_size=1, max_size=30),
       gamma=st.integers(1, 5))
def test_saturation_matches_trailing_window(counts, gamma):
    monitor = SaturationMonitor(gamma=gamma)
    for count in counts:
        monitor.record(3, count)
    expected = len(counts) >= gamma and all(c == 0 for c in counts[-gamma:])
    assert monitor.is_saturated(3) == expected
