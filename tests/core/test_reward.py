"""Tests for the α-weighted local/global reward (Sec. III-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reward import RewardBreakdown, RewardComputer

point_sets = st.sets(st.integers(0, 60).map(lambda i: f"p{i}"), max_size=25)


class TestRewardComputer:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RewardComputer(alpha=-0.1)
        with pytest.raises(ValueError):
            RewardComputer(alpha=1.1)

    def test_paper_example_weighting(self):
        """With α = 0.25 a globally-new point is worth 3x an arm-only-new point."""
        computer = RewardComputer(alpha=0.25)
        only_local = computer.compute(arm_coverage=set(),
                                      test_coverage={"a"},
                                      global_new_points=set())
        also_global = computer.compute(arm_coverage=set(),
                                       test_coverage={"a"},
                                       global_new_points={"a"})
        assert only_local.value == pytest.approx(0.25)
        assert also_global.value == pytest.approx(1.0)
        assert also_global.value / only_local.value == pytest.approx(4.0)
        # relative extra weight of the global component: (1-α)/α = 3.
        assert (also_global.value - only_local.value) / only_local.value == pytest.approx(3.0)

    def test_no_new_coverage_zero_reward(self):
        computer = RewardComputer()
        breakdown = computer.compute({"a", "b"}, {"a", "b"}, set())
        assert breakdown.value == 0.0
        assert breakdown.local_count == 0
        assert breakdown.global_count == 0

    def test_local_excludes_arm_history(self):
        computer = RewardComputer(alpha=0.5)
        breakdown = computer.compute({"a"}, {"a", "b", "c"}, {"c"})
        assert breakdown.local_new == {"b", "c"}
        assert breakdown.global_new == {"c"}
        assert breakdown.value == pytest.approx(0.5 * 2 + 0.5 * 1)

    def test_alpha_one_ignores_global(self):
        computer = RewardComputer(alpha=1.0)
        breakdown = computer.compute(set(), {"a", "b"}, {"a"})
        assert breakdown.value == pytest.approx(2.0)

    def test_alpha_zero_counts_only_global(self):
        computer = RewardComputer(alpha=0.0)
        breakdown = computer.compute(set(), {"a", "b"}, {"a"})
        assert breakdown.value == pytest.approx(1.0)


class TestRewardBreakdown:
    def test_counts(self):
        breakdown = RewardBreakdown(local_new=frozenset({"a", "b"}),
                                    global_new=frozenset({"a"}), alpha=0.25)
        assert breakdown.local_count == 2
        assert breakdown.global_count == 1
        assert breakdown.value == pytest.approx(0.25 * 2 + 0.75 * 1)


# ----------------------------------------------------------------- properties
@given(arm=point_sets, test=point_sets,
       alpha=st.floats(min_value=0.0, max_value=1.0))
def test_reward_invariants(arm, test, alpha):
    """cov_G ⊆ cov_L ⊆ test coverage, and the reward formula holds."""
    global_new = test - arm  # arm history is always a subset of global history
    breakdown = RewardComputer(alpha).compute(arm, test, global_new)
    assert breakdown.global_new <= breakdown.local_new <= frozenset(test)
    assert breakdown.value == pytest.approx(
        alpha * breakdown.local_count + (1 - alpha) * breakdown.global_count)
    assert breakdown.value >= 0.0


@given(arm=point_sets, test=point_sets)
def test_reward_monotone_in_alpha_when_local_exceeds_global(arm, test):
    """More α shifts weight toward the (larger) local component."""
    global_new = set()
    low = RewardComputer(0.1).compute(arm, test, global_new)
    high = RewardComputer(0.9).compute(arm, test, global_new)
    assert high.value >= low.value


# ------------------------------------------------------------- point weights
class TestPointWeights:
    def test_no_weights_reproduces_plain_counts(self):
        unweighted = RewardComputer(0.25)
        weighted = RewardComputer(0.25, point_weights={})
        arm, test = {"a.x"}, {"a.x", "b.y", "c.z"}
        assert (weighted.compute(arm, test, {"b.y"}).value
                == unweighted.compute(arm, test, {"b.y"}).value)

    def test_longest_prefix_match(self):
        computer = RewardComputer(0.25, point_weights={"csr": 2.0,
                                                       "csr.mcause": 5.0})
        assert computer.point_weight("csr.mcause.none->breakpoint") == 5.0
        assert computer.point_weight("csr.mscratch.zero->nonzero") == 2.0
        assert computer.point_weight("decode.addi") == 1.0

    def test_weighted_reward_value(self):
        computer = RewardComputer(0.5, point_weights={"csr": 3.0})
        breakdown = computer.compute(set(), {"csr.mepc.zero->code", "decode.addi"},
                                     {"csr.mepc.zero->code"})
        # local = 3 + 1 = 4 weighted, global = 3 weighted
        assert breakdown.local_value == pytest.approx(4.0)
        assert breakdown.global_value == pytest.approx(3.0)
        assert breakdown.value == pytest.approx(0.5 * 4.0 + 0.5 * 3.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RewardComputer(0.25, point_weights={"csr": -1.0})

    def test_breakdown_defaults_keep_count_semantics(self):
        breakdown = RewardBreakdown(local_new=frozenset({"a", "b"}),
                                    global_new=frozenset({"a"}), alpha=0.25)
        assert breakdown.local_value is None
        assert breakdown.value == pytest.approx(0.25 * 2 + 0.75 * 1)
