"""Tests for the FIFO test pool."""

import pytest

from repro.fuzzing.testpool import TestPool
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram


def _program(tag: int) -> TestProgram:
    return TestProgram(instructions=(Instruction("addi", rd=1, rs1=0, imm=tag),))


class TestFifoOrder:
    def test_push_pop_order(self):
        pool = TestPool()
        programs = [_program(i) for i in range(5)]
        pool.push_many(programs)
        assert [pool.pop() for _ in range(5)] == programs

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            TestPool().pop()

    def test_peek(self):
        pool = TestPool()
        assert pool.peek() is None
        first = _program(1)
        pool.push(first)
        pool.push(_program(2))
        assert pool.peek() is first
        assert len(pool) == 2  # peek does not remove

    def test_bool_and_len(self):
        pool = TestPool()
        assert not pool
        pool.push(_program(0))
        assert pool and len(pool) == 1

    def test_clear(self):
        pool = TestPool([_program(i) for i in range(3)])
        pool.clear()
        assert len(pool) == 0


class TestCapacity:
    def test_max_size_drops_overflow(self):
        pool = TestPool(max_size=2)
        accepted = pool.push_many([_program(i) for i in range(5)])
        assert accepted == 2
        assert len(pool) == 2
        assert pool.total_dropped == 3

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            TestPool(max_size=0)

    def test_statistics(self):
        pool = TestPool()
        pool.push_many([_program(i) for i in range(4)])
        pool.pop()
        assert pool.total_pushed == 4
        assert pool.total_popped == 1

    def test_snapshot_preserves_order(self):
        programs = [_program(i) for i in range(3)]
        pool = TestPool(programs)
        assert pool.snapshot() == programs
        assert len(pool) == 3
