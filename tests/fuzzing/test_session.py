"""Tests for the shared fuzzing session plumbing."""

import pytest

from repro.fuzzing.session import FuzzSession
from repro.isa import csr as csrdefs
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel


def _program(*instructions):
    return TestProgram(instructions=tuple(instructions))


@pytest.fixture
def session():
    return FuzzSession(CVA6Model(bugs=["V6"]))


class TestRunTest:
    def test_first_test_is_interesting(self, session, straightline_program):
        outcome = session.run_test(straightline_program)
        assert outcome.test_index == 0
        assert outcome.is_interesting
        assert outcome.coverage
        assert session.tests_executed == 1
        assert session.interesting_tests == 1

    def test_repeated_test_not_interesting(self, session, straightline_program):
        session.run_test(straightline_program)
        outcome = session.run_test(straightline_program)
        assert not outcome.is_interesting
        assert outcome.new_points == frozenset()

    def test_coverage_accumulates(self, session, straightline_program, memory_program):
        first = session.run_test(straightline_program)
        before = session.coverage_count
        session.run_test(memory_program)
        assert session.coverage_count >= before
        assert session.coverage_count >= len(first.new_points)

    def test_bug_detection_recorded_once(self, session):
        trigger = _program(
            Instruction("csrrs", rd=5, rs1=0, csr=0x7B0),
            Instruction("ecall"),
        )
        first = session.run_test(trigger)
        assert first.detected_bugs == {"V6"}
        assert session.bug_detections["V6"].test_index == 0
        session.run_test(trigger)
        # The first detection is kept, not overwritten.
        assert session.bug_detections["V6"].test_index == 0
        assert session.mismatching_tests == 2

    def test_clean_program_no_mismatch(self, session, straightline_program):
        outcome = session.run_test(straightline_program)
        assert outcome.mismatch is None
        assert outcome.detected_bugs == frozenset()

    def test_undetected_bugs(self):
        session = FuzzSession(RocketModel())
        assert session.undetected_bugs() == ["V7"]
        trigger = _program(
            Instruction("ebreak"),
            Instruction("csrrs", rd=5, rs1=0, csr=csrdefs.MINSTRET),
            Instruction("ecall"),
        )
        session.run_test(trigger)
        assert session.undetected_bugs() == []

    def test_total_points_matches_dut_space(self, session):
        assert session.total_points == session.dut.total_coverage_points


class TestGoldenTraceCache:
    def test_duplicate_program_hits_cache(self, session, straightline_program):
        session.run_test(straightline_program)
        assert session.golden_cache_misses == 1
        assert session.golden_cache_hits == 0
        session.run_test(straightline_program)
        assert session.golden_cache_hits == 1
        assert session.golden_cache_misses == 1

    def test_equal_content_different_provenance_hits(self, session):
        body = (Instruction("addi", rd=1, rs1=0, imm=5), Instruction("ecall"))
        session.run_test(_program(*body))
        session.run_test(_program(*body))  # distinct program_id, same words
        assert session.golden_cache_hits == 1

    def test_distinct_programs_miss(self, session, straightline_program,
                                    memory_program):
        session.run_test(straightline_program)
        session.run_test(memory_program)
        assert session.golden_cache_hits == 0
        assert session.golden_cache_misses == 2

    def test_cached_outcomes_identical(self, session, straightline_program):
        first = session.run_test(straightline_program)
        second = session.run_test(straightline_program)
        assert first.mismatch is None and second.mismatch is None
        assert first.coverage == second.coverage

    def test_shared_cache_keys_on_model_config(self, straightline_program):
        """Different golden configurations must never share cache entries."""
        from repro.sim.executor import ExecutorConfig
        from repro.sim.golden import GoldenModel, GoldenTraceCache

        cache = GoldenTraceCache()
        counting = GoldenModel(ExecutorConfig(count_trapped_instructions=True))
        skipping = GoldenModel(ExecutorConfig(count_trapped_instructions=False))
        cache.get_or_run(counting, straightline_program)
        cache.get_or_run(skipping, straightline_program)
        assert cache.stats()["misses"] == 2 and cache.stats()["hits"] == 0
        cache.get_or_run(counting, straightline_program)
        assert cache.stats()["hits"] == 1

    def test_stats_surface_cache_counters(self, session, straightline_program):
        session.run_test(straightline_program)
        session.run_test(straightline_program)
        stats = session.stats()
        assert stats["golden_cache_hits"] == 1
        assert stats["golden_cache_misses"] == 1
        assert stats["tests_executed"] == 2


class TestGoldenCacheInCampaign:
    def test_duplicate_seeds_in_campaign_hit_cache(self):
        """A campaign that replays a seed must serve it from the trace cache."""
        from repro.fuzzing.base import Fuzzer, FuzzerConfig

        class ReplayFuzzer(Fuzzer):
            """Degenerate fuzzer: schedules the same seed every iteration."""

            name = "replay"

            def __init__(self, dut, **kwargs):
                super().__init__(dut, **kwargs)
                self._seed = self.seed_generator.generate()

            def _next_test(self):
                return self._seed

            def _after_test(self, program, outcome):
                pass

        fuzzer = ReplayFuzzer(CVA6Model(bugs=[]),
                              config=FuzzerConfig(num_seeds=1), rng=7)
        result = fuzzer.run(4)
        assert result.metadata["golden_cache_hits"] >= 1
        assert result.metadata["golden_cache_misses"] == 1
        assert fuzzer.session.golden_cache_hits == 3
