"""Tests for the shared fuzzing session plumbing."""

import pytest

from repro.fuzzing.session import FuzzSession
from repro.isa import csr as csrdefs
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel


def _program(*instructions):
    return TestProgram(instructions=tuple(instructions))


@pytest.fixture
def session():
    return FuzzSession(CVA6Model(bugs=["V6"]))


class TestRunTest:
    def test_first_test_is_interesting(self, session, straightline_program):
        outcome = session.run_test(straightline_program)
        assert outcome.test_index == 0
        assert outcome.is_interesting
        assert outcome.coverage
        assert session.tests_executed == 1
        assert session.interesting_tests == 1

    def test_repeated_test_not_interesting(self, session, straightline_program):
        session.run_test(straightline_program)
        outcome = session.run_test(straightline_program)
        assert not outcome.is_interesting
        assert outcome.new_points == frozenset()

    def test_coverage_accumulates(self, session, straightline_program, memory_program):
        first = session.run_test(straightline_program)
        before = session.coverage_count
        session.run_test(memory_program)
        assert session.coverage_count >= before
        assert session.coverage_count >= len(first.new_points)

    def test_bug_detection_recorded_once(self, session):
        trigger = _program(
            Instruction("csrrs", rd=5, rs1=0, csr=0x7B0),
            Instruction("ecall"),
        )
        first = session.run_test(trigger)
        assert first.detected_bugs == {"V6"}
        assert session.bug_detections["V6"].test_index == 0
        session.run_test(trigger)
        # The first detection is kept, not overwritten.
        assert session.bug_detections["V6"].test_index == 0
        assert session.mismatching_tests == 2

    def test_clean_program_no_mismatch(self, session, straightline_program):
        outcome = session.run_test(straightline_program)
        assert outcome.mismatch is None
        assert outcome.detected_bugs == frozenset()

    def test_undetected_bugs(self):
        session = FuzzSession(RocketModel())
        assert session.undetected_bugs() == ["V7"]
        trigger = _program(
            Instruction("ebreak"),
            Instruction("csrrs", rd=5, rs1=0, csr=csrdefs.MINSTRET),
            Instruction("ecall"),
        )
        session.run_test(trigger)
        assert session.undetected_bugs() == []

    def test_total_points_matches_dut_space(self, session):
        assert session.total_points == session.dut.total_coverage_points
