"""Tests for the mutation engine and its operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzing.mutation import (
    DEFAULT_OPERATOR_WEIGHTS,
    MutationEngine,
    MutationOperator,
)
from repro.isa.generator import SeedGenerator
from repro.isa.program import TestProgram
from repro.isa.instruction import Instruction


@pytest.fixture
def engine():
    return MutationEngine(rng=3)


@pytest.fixture
def seed_program():
    return SeedGenerator(rng=17).generate()


class TestConfiguration:
    def test_default_operators_all_registered(self, engine):
        assert set(engine.operator_names) == set(DEFAULT_OPERATOR_WEIGHTS)

    def test_unknown_operator_weight_rejected(self):
        with pytest.raises(KeyError):
            MutationEngine(weights={"warp_drive": 1.0})

    def test_invalid_mutants_per_test(self):
        with pytest.raises(ValueError):
            MutationEngine(mutants_per_test=0)

    def test_set_weights_changes_distribution(self, engine):
        only_bitflip = {name: 0.0 for name in engine.operator_names}
        only_bitflip["bitflip1"] = 1.0
        engine.set_weights(only_bitflip)
        for _ in range(20):
            assert engine.pick_operator().name == "bitflip1"

    def test_negative_weights_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.set_weights({name: -1.0 for name in engine.operator_names})


class TestMutationBasics:
    def test_mutate_returns_requested_count(self, engine, seed_program):
        assert len(engine.mutate(seed_program, count=7)) == 7
        assert len(engine.mutate(seed_program)) == engine.mutants_per_test

    def test_children_have_lineage(self, engine, seed_program):
        for child in engine.mutate(seed_program, count=5):
            assert child.parent_id == seed_program.program_id
            assert child.seed_id == seed_program.seed_id
            assert child.generation == 1
            assert child.mutation_op in DEFAULT_OPERATOR_WEIGHTS

    def test_parent_not_modified(self, engine, seed_program):
        original_words = seed_program.words()
        engine.mutate(seed_program, count=20)
        assert seed_program.words() == original_words

    def test_mutants_usually_differ_from_parent(self, engine, seed_program):
        children = engine.mutate(seed_program, count=20)
        differing = sum(child.words() != seed_program.words() for child in children)
        assert differing >= 15

    def test_deterministic_given_seed(self, seed_program):
        a = MutationEngine(rng=5).mutate(seed_program, count=10)
        b = MutationEngine(rng=5).mutate(seed_program, count=10)
        assert [c.words() for c in a] == [c.words() for c in b]

    def test_mutants_are_encodable(self, engine, seed_program):
        program = seed_program
        for _ in range(50):
            program = engine.mutate_once(program)
            words = program.words()
            assert all(0 <= w < 2**32 for w in words)


class TestIndividualOperators:
    def _operator(self, engine, name) -> MutationOperator:
        return next(op for op in engine.operators if op.name == name)

    def test_bitflip_changes_exactly_one_word(self, engine):
        # Use R-type-only programs: every bit of their encoding is significant,
        # so the flipped word survives the decode/re-encode canonicalisation.
        program = TestProgram(instructions=tuple(
            Instruction("add", rd=i % 8 + 1, rs1=2, rs2=3) for i in range(6)))
        operator = self._operator(engine, "bitflip1")
        child = engine.mutate_once(program, operator)
        differences = [
            (a, b) for a, b in zip(program.words(), child.words()) if a != b
        ]
        assert len(differences) == 1
        a, b = differences[0]
        assert bin(a ^ b).count("1") == 1

    def test_instr_insert_grows_program(self, engine, seed_program):
        operator = self._operator(engine, "instr_insert")
        child = engine.mutate_once(seed_program, operator)
        assert len(child) == len(seed_program) + 1

    def test_instr_delete_shrinks_program(self, engine, seed_program):
        operator = self._operator(engine, "instr_delete")
        child = engine.mutate_once(seed_program, operator)
        assert len(child) == len(seed_program) - 1

    def test_instr_delete_respects_minimum(self, engine):
        tiny = TestProgram(instructions=tuple(
            Instruction("addi", rd=1, rs1=1, imm=i) for i in range(4)))
        operator = self._operator(engine, "instr_delete")
        child = engine.mutate_once(tiny, operator)
        assert len(child) == len(tiny)  # falls back to a bit flip

    def test_instr_duplicate(self, engine, seed_program):
        operator = self._operator(engine, "instr_duplicate")
        child = engine.mutate_once(seed_program, operator)
        assert len(child) == len(seed_program) + 1

    def test_opcode_swap_preserves_class(self, engine, seed_program):
        from repro.isa.encoding import spec_for

        operator = self._operator(engine, "opcode_swap")
        for _ in range(10):
            child = engine.mutate_once(seed_program, operator)
            changed = [
                (a, b) for a, b in zip(seed_program.instructions, child.instructions)
                if a != b
            ]
            for old, new in changed:
                if old.is_illegal or new.is_illegal:
                    continue
                assert spec_for(old.mnemonic).cls is spec_for(new.mnemonic).cls

    def test_operand_swap_swaps_sources(self, engine):
        program = TestProgram(instructions=(
            Instruction("add", rd=3, rs1=4, rs2=5),
        ))
        operator = self._operator(engine, "operand_swap")
        child = engine.mutate_once(program, operator)
        mutated = child.instructions[0]
        assert (mutated.rs1, mutated.rs2) == (5, 4)

    def test_imm_mutation_stays_in_range(self, engine, seed_program):
        from repro.isa.encoding import InstrFormat, spec_for

        operator = self._operator(engine, "imm_large")
        program = seed_program
        for _ in range(30):
            program = engine.mutate_once(program, operator)
        for instr in program.instructions:
            if instr.is_illegal:
                continue
            if spec_for(instr.mnemonic).fmt is InstrFormat.I:
                assert -2048 <= instr.imm <= 2047

    def test_length_capped(self, engine):
        program = SeedGenerator(rng=1).generate()
        operator = self._operator(engine, "instr_insert")
        for _ in range(100):
            program = engine.mutate_once(program, operator)
        assert len(program) <= engine.max_program_length


# ----------------------------------------------------------------- properties
@given(st.integers(0, 2**32 - 1), st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_any_seed_mutates_without_error(rng_seed, extra):
    """Mutation never raises, regardless of RNG stream or repeated application."""
    engine = MutationEngine(rng=rng_seed)
    program = SeedGenerator(rng=rng_seed).generate()
    for _ in range(5):
        program = engine.mutate_once(program)
    assert len(program.words()) >= 1
