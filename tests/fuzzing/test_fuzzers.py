"""Tests for the TheHuzz baseline and the random fuzzer."""

import pytest

from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.random_fuzzer import RandomFuzzer
from repro.fuzzing.thehuzz import TheHuzzFuzzer
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel


@pytest.fixture
def small_config():
    return FuzzerConfig(num_seeds=4, mutants_per_test=2)


class TestFuzzerConfig:
    def test_defaults(self):
        config = FuzzerConfig()
        assert config.num_seeds == 10
        assert config.mutants_per_test == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzerConfig(num_seeds=0)
        with pytest.raises(ValueError):
            FuzzerConfig(mutants_per_test=0)


class TestTheHuzz:
    def test_initial_pool_holds_seeds(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=1)
        assert len(fuzzer.pool) == small_config.num_seeds

    def test_fuzz_one_runs_a_test(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=1)
        outcome = fuzzer.fuzz_one()
        assert outcome.test_index == 0
        assert fuzzer.session.tests_executed == 1

    def test_interesting_tests_spawn_mutants(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=1)
        before = len(fuzzer.pool)
        outcome = fuzzer.fuzz_one()
        assert outcome.is_interesting  # the very first test always covers new points
        # one popped, mutants_per_test pushed
        assert len(fuzzer.pool) == before - 1 + small_config.mutants_per_test

    def test_pool_never_starves(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=2)
        for _ in range(small_config.num_seeds * 3):
            fuzzer.fuzz_one()
        # even if everything got uninteresting, _next_test generates new seeds
        assert fuzzer.session.tests_executed == small_config.num_seeds * 3

    def test_run_returns_campaign_result(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=3)
        result = fuzzer.run(20)
        assert result.fuzzer_name == "thehuzz"
        assert result.dut_name == "cva6"
        assert result.num_tests == 20
        assert result.coverage_count > 0
        assert result.total_points == fuzzer.dut.total_coverage_points
        assert len(result.coverage_curve) == 20
        assert result.interesting_tests >= 1
        assert result.metadata["num_seeds"] == 4

    def test_run_rejects_nonpositive(self, small_config):
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=3)
        with pytest.raises(ValueError):
            fuzzer.run(0)

    def test_deterministic_given_seed(self, small_config):
        results = []
        for _ in range(2):
            fuzzer = TheHuzzFuzzer(CVA6Model(bugs=[]), config=small_config, rng=99)
            results.append(fuzzer.run(15))
        assert results[0].coverage_count == results[1].coverage_count
        assert [s.covered for s in results[0].coverage_curve] == \
            [s.covered for s in results[1].coverage_curve]

    def test_detects_easy_bug_quickly(self):
        # V5 (missing exception on unmapped addresses) is detected within a
        # handful of tests, mirroring the paper's observation.
        fuzzer = TheHuzzFuzzer(CVA6Model(bugs=["V5"]),
                               config=FuzzerConfig(num_seeds=5), rng=7)
        result = fuzzer.run(60)
        assert "V5" in result.bug_detections


class TestRandomFuzzer:
    def test_every_test_is_fresh(self, small_config):
        fuzzer = RandomFuzzer(RocketModel(bugs=[]), config=small_config, rng=5)
        result = fuzzer.run(10)
        assert result.fuzzer_name == "random"
        assert result.num_tests == 10
        assert result.coverage_count > 0

    def test_no_feedback_state(self, small_config):
        fuzzer = RandomFuzzer(RocketModel(bugs=[]), config=small_config, rng=5)
        outcome = fuzzer.fuzz_one()
        # RandomFuzzer has no pool; nothing to assert beyond not crashing and
        # producing generation-0 programs only.
        assert outcome.program.generation == 0
