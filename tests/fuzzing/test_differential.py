"""Tests for the differential tester."""

from repro.fuzzing.differential import (
    DifferentialTester,
    Mismatch,
    compare_traces,
)
from repro.isa.exceptions import TrapCause
from repro.rtl.harness import DutRunResult
from repro.sim.trace import CommitRecord, ExecutionResult, HaltReason


def _record(step, **overrides):
    values = dict(step=step, pc=0x4000_0000 + 4 * step, word=0x13,
                  mnemonic="addi", rd=1, rd_value=step, next_pc=0x4000_0000 + 4 * (step + 1))
    values.update(overrides)
    return CommitRecord(**values)


def _result(records):
    return ExecutionResult(records=list(records), halt_reason=HaltReason.PROGRAM_END)


class TestCompareTraces:
    def test_identical_traces_match(self):
        records = [_record(i) for i in range(4)]
        assert compare_traces(_result(records), _result(records)) is None

    def test_rd_value_mismatch_found(self):
        golden = [_record(0), _record(1)]
        dut = [_record(0), _record(1, rd_value=999)]
        mismatch = compare_traces(_result(golden), _result(dut))
        assert mismatch is not None
        assert mismatch.step == 1
        assert mismatch.field_name == "rd_value"
        assert mismatch.golden_value == 1
        assert mismatch.dut_value == 999

    def test_trap_mismatch_found(self):
        golden = [_record(0, trap=TrapCause.ILLEGAL_INSTRUCTION, rd=None, rd_value=None)]
        dut = [_record(0, rd=None, rd_value=None)]
        mismatch = compare_traces(_result(golden), _result(dut))
        assert mismatch.field_name == "trap"

    def test_first_mismatch_reported(self):
        golden = [_record(0), _record(1), _record(2)]
        dut = [_record(0), _record(1, rd_value=7), _record(2, rd_value=9)]
        assert compare_traces(_result(golden), _result(dut)).step == 1

    def test_length_mismatch(self):
        golden = [_record(0), _record(1)]
        dut = [_record(0)]
        mismatch = compare_traces(_result(golden), _result(dut))
        assert mismatch.field_name == "trace_length"
        assert mismatch.step == 1

    def test_describe(self):
        mismatch = Mismatch(step=3, field_name="rd_value", golden_value=1,
                            dut_value=2, pc=0x80)
        text = mismatch.describe()
        assert "step 3" in text and "rd_value" in text


class TestDifferentialTester:
    def _dut_run(self, records, fired=()):
        return DutRunResult(execution=_result(records), coverage=frozenset(),
                            fired_bugs=frozenset(fired),
                            bug_effect_steps={b: 0 for b in fired})

    def test_no_mismatch_no_bugs(self):
        records = [_record(0)]
        report = DifferentialTester().check(_result(records), self._dut_run(records))
        assert not report.found_mismatch
        assert report.detected_bugs == frozenset()

    def test_mismatch_attributed_to_fired_bugs(self):
        golden = [_record(0)]
        dut = [_record(0, rd_value=5)]
        report = DifferentialTester().check(
            _result(golden), self._dut_run(dut, fired={"V6"}))
        assert report.found_mismatch
        assert report.detected_bugs == {"V6"}

    def test_fired_but_no_mismatch_not_detected(self):
        records = [_record(0)]
        report = DifferentialTester().check(
            _result(records), self._dut_run(records, fired={"V7"}))
        assert not report.found_mismatch
        assert report.detected_bugs == frozenset()
