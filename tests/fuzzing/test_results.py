"""Tests for campaign result records."""

import pytest

from repro.coverage.database import CoverageSample
from repro.fuzzing.results import BugDetection, FuzzCampaignResult, TestOutcome
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.sim.trace import HaltReason


def _outcome(new_points=frozenset()):
    return TestOutcome(
        test_index=0,
        program=TestProgram(instructions=(Instruction("ecall"),)),
        coverage=frozenset({"a"}),
        new_points=frozenset(new_points),
        mismatch=None,
        detected_bugs=frozenset(),
        halt_reason=HaltReason.ECALL,
    )


class TestTestOutcome:
    def test_interesting_iff_new_points(self):
        assert _outcome({"x"}).is_interesting
        assert not _outcome().is_interesting


class TestBugDetection:
    def test_tests_to_detection(self):
        detection = BugDetection(bug_id="V1", test_index=9, program_id="t3")
        assert detection.tests_to_detection == 10


class TestFuzzCampaignResult:
    def _result(self):
        return FuzzCampaignResult(
            fuzzer_name="thehuzz",
            dut_name="cva6",
            num_tests=10,
            coverage_curve=[CoverageSample(0, 5), CoverageSample(4, 9),
                            CoverageSample(9, 12)],
            coverage_count=12,
            total_points=100,
            bug_detections={"V5": BugDetection("V5", 2, "t9")},
        )

    def test_coverage_percent(self):
        assert self._result().coverage_percent == pytest.approx(12.0)

    def test_percent_with_zero_total(self):
        result = FuzzCampaignResult("f", "d", 1)
        assert result.coverage_percent == 0.0

    def test_detection_tests(self):
        result = self._result()
        assert result.detection_tests("V5") == 3
        assert result.detection_tests("V1") is None

    def test_coverage_at(self):
        result = self._result()
        assert result.coverage_at(0) == 5
        assert result.coverage_at(3) == 5
        assert result.coverage_at(4) == 9
        assert result.coverage_at(100) == 12

    def test_tests_to_reach_coverage(self):
        result = self._result()
        assert result.tests_to_reach_coverage(5) == 1
        assert result.tests_to_reach_coverage(9) == 5
        assert result.tests_to_reach_coverage(12) == 10
        assert result.tests_to_reach_coverage(13) is None

    def test_summary_mentions_key_facts(self):
        text = self._result().summary()
        assert "thehuzz" in text and "cva6" in text and "V5@3" in text
