"""Tests for campaign result records."""

import pytest

from repro.coverage.database import CoverageSample
from repro.fuzzing.results import BugDetection, FuzzCampaignResult, TestOutcome
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.sim.trace import HaltReason


def _outcome(new_points=frozenset()):
    return TestOutcome(
        test_index=0,
        program=TestProgram(instructions=(Instruction("ecall"),)),
        coverage=frozenset({"a"}),
        new_points=frozenset(new_points),
        mismatch=None,
        detected_bugs=frozenset(),
        halt_reason=HaltReason.ECALL,
    )


class TestTestOutcome:
    def test_interesting_iff_new_points(self):
        assert _outcome({"x"}).is_interesting
        assert not _outcome().is_interesting


class TestBugDetection:
    def test_tests_to_detection(self):
        detection = BugDetection(bug_id="V1", test_index=9, program_id="t3")
        assert detection.tests_to_detection == 10


class TestFuzzCampaignResult:
    def _result(self):
        return FuzzCampaignResult(
            fuzzer_name="thehuzz",
            dut_name="cva6",
            num_tests=10,
            coverage_curve=[CoverageSample(0, 5), CoverageSample(4, 9),
                            CoverageSample(9, 12)],
            coverage_count=12,
            total_points=100,
            bug_detections={"V5": BugDetection("V5", 2, "t9")},
        )

    def test_coverage_percent(self):
        assert self._result().coverage_percent == pytest.approx(12.0)

    def test_percent_with_zero_total(self):
        result = FuzzCampaignResult("f", "d", 1)
        assert result.coverage_percent == 0.0

    def test_detection_tests(self):
        result = self._result()
        assert result.detection_tests("V5") == 3
        assert result.detection_tests("V1") is None

    def test_coverage_at(self):
        result = self._result()
        assert result.coverage_at(0) == 5
        assert result.coverage_at(3) == 5
        assert result.coverage_at(4) == 9
        assert result.coverage_at(100) == 12

    def test_tests_to_reach_coverage(self):
        result = self._result()
        assert result.tests_to_reach_coverage(5) == 1
        assert result.tests_to_reach_coverage(9) == 5
        assert result.tests_to_reach_coverage(12) == 10
        assert result.tests_to_reach_coverage(13) is None

    def test_summary_mentions_key_facts(self):
        text = self._result().summary()
        assert "thehuzz" in text and "cva6" in text and "V5@3" in text


class TestSerialization:
    def _result(self):
        return FuzzCampaignResult(
            fuzzer_name="mabfuzz:ucb",
            dut_name="rocket",
            num_tests=20,
            coverage_curve=[CoverageSample(0, 5), CoverageSample(7, 11)],
            coverage_count=11,
            total_points=200,
            bug_detections={"V5": BugDetection("V5", 2, "t9", "mismatch at pc"),
                            "V7": BugDetection("V7", 15, "t40")},
            interesting_tests=4,
            mismatching_tests=2,
            elapsed_seconds=1.25,
            metadata={"trial": 1, "seed": 99, "gamma": None, "alpha": 0.25},
        )

    def test_coverage_sample_round_trip(self):
        sample = CoverageSample(3, 17)
        assert CoverageSample.from_dict(sample.to_dict()) == sample

    def test_bug_detection_round_trip(self):
        detection = BugDetection("V1", 4, "t2", "desc")
        assert BugDetection.from_dict(detection.to_dict()) == detection

    def test_bug_detection_default_description(self):
        rebuilt = BugDetection.from_dict({"bug_id": "V1", "test_index": 0,
                                          "program_id": "t0"})
        assert rebuilt.description == ""

    def test_result_round_trip_equality(self):
        result = self._result()
        rebuilt = FuzzCampaignResult.from_dict(result.to_dict())
        assert rebuilt == result  # dataclass field-wise equality

    def test_round_trip_survives_json(self):
        import json

        result = self._result()
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = FuzzCampaignResult.from_dict(payload)
        assert rebuilt == result
        assert rebuilt.metadata["gamma"] is None  # None preserved in metadata

    def test_round_trip_with_no_detections(self):
        result = FuzzCampaignResult("thehuzz", "cva6", 5)
        rebuilt = FuzzCampaignResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert rebuilt.detection_tests("V5") is None

    def test_canonical_dict_drops_wall_clock(self):
        result = self._result()
        canonical = result.canonical_dict()
        assert "elapsed_seconds" not in canonical
        slower = FuzzCampaignResult.from_dict(result.to_dict())
        slower.elapsed_seconds = 99.0
        assert slower.canonical_dict() == canonical
