"""Unit tests for the coverage-directed corpus (`repro.fuzzing.corpus`)."""

import pytest

from repro.fuzzing.corpus import DEFAULT_MAX_ENTRIES, CorpusEntry, CorpusManager
from repro.isa.generator import SeedGenerator


def _programs(count, seed=11):
    generator = SeedGenerator(rng=seed)
    return [generator.generate() for _ in range(count)]


def _offer(manager, program, points, **kwargs):
    return manager.offer(program, frozenset(points), **kwargs)


class TestAdmission:
    def test_first_offer_admitted(self):
        manager = CorpusManager()
        (program,) = _programs(1)
        assert _offer(manager, program, {"t.a", "t.b"})
        assert len(manager) == 1
        assert manager.covered_count == 2
        assert manager.counters["admitted"] == 1

    def test_duplicate_coverage_rejected(self):
        manager = CorpusManager()
        first, second = _programs(2)
        assert _offer(manager, first, {"t.a", "t.b"})
        assert not _offer(manager, second, {"t.a"})
        assert len(manager) == 1
        assert manager.counters["rejected"] == 1

    def test_one_novel_bit_is_enough(self):
        manager = CorpusManager()
        first, second = _programs(2)
        _offer(manager, first, {"t.a", "t.b"})
        assert _offer(manager, second, {"t.a", "t.b", "t.c"})
        assert manager.covered_count == 3

    def test_novelty_judged_against_merged_state(self):
        # A manager that inherited points from elsewhere (another trial,
        # a dispatcher broadcast) must reject programs that only re-reach
        # those points.
        manager = CorpusManager()
        manager.merge_points({"t.a", "t.b"})
        (program,) = _programs(1)
        assert not _offer(manager, program, {"t.a"})

    def test_provenance_recorded(self):
        manager = CorpusManager()
        (program,) = _programs(1)
        _offer(manager, program, {"t.a"}, scenario="trap")
        entry = next(iter(manager.entries.values()))
        assert entry.scenario == "trap"
        assert entry.fingerprint == program.fingerprint()


class TestEviction:
    def test_dominated_entry_evicted(self):
        manager = CorpusManager()
        small, big = _programs(2)
        _offer(manager, small, {"t.a"})
        _offer(manager, big, {"t.a", "t.b"})  # strict superset dominates
        assert len(manager) == 1
        assert next(iter(manager.entries)) == big.fingerprint()
        assert manager.counters["evicted"] == 1

    def test_partial_overlap_keeps_both(self):
        manager = CorpusManager()
        first, second = _programs(2)
        _offer(manager, first, {"t.a", "t.x"})
        _offer(manager, second, {"t.a", "t.y"})
        assert len(manager) == 2

    def test_capacity_evicts_smallest_then_oldest(self):
        manager = CorpusManager(max_entries=2)
        p1, p2, p3 = _programs(3)
        _offer(manager, p1, {"t.a"})
        _offer(manager, p2, {"t.b", "t.c"})
        _offer(manager, p3, {"t.d"})  # p1 (1 point, older than p3) goes
        assert set(manager.entries) == {p2.fingerprint(), p3.fingerprint()}
        # Eviction never shrinks the coverage map.
        assert manager.covered_count == 4

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            CorpusManager(max_entries=0)


class TestSampling:
    def test_empty_corpus_samples_none(self):
        assert CorpusManager().sample() is None

    def test_sample_is_seed_deterministic(self):
        def build():
            manager = CorpusManager(rng=42)
            for index, program in enumerate(_programs(5)):
                _offer(manager, program, {f"t.s{index}"})
            return manager

        first = build()
        second = build()
        assert ([first.sample().fingerprint() for _ in range(8)]
                == [second.sample().fingerprint() for _ in range(8)])

    def test_sampled_program_matches_admitted_fingerprint(self):
        manager = CorpusManager(rng=7)
        (program,) = _programs(1)
        _offer(manager, program, {"t.a"})
        sampled = manager.sample()
        assert sampled.fingerprint() == program.fingerprint()
        assert sampled.words() == program.words()
        assert manager.counters["sampled"] == 1


class TestWireFormat:
    def test_entry_round_trip_recomputes_mask(self):
        manager = CorpusManager()
        (program,) = _programs(1)
        _offer(manager, program, {"t.a", "t.b"}, scenario="user")
        entry = next(iter(manager.entries.values()))
        rebuilt = CorpusEntry.from_dict(entry.to_dict())
        assert rebuilt.fingerprint == entry.fingerprint
        assert rebuilt.points == entry.points
        assert rebuilt.mask == entry.mask
        assert "mask" not in entry.to_dict()

    def test_payload_round_trip(self):
        manager = CorpusManager()
        for index, program in enumerate(_programs(4)):
            _offer(manager, program, {f"t.r{index}", "t.shared"})
        clone = CorpusManager.from_payload(manager.to_payload())
        assert clone.coverage_points() == manager.coverage_points()
        assert set(clone.entries) == set(manager.entries)

    def test_merge_is_idempotent(self):
        manager = CorpusManager()
        for index, program in enumerate(_programs(3)):
            _offer(manager, program, {f"t.i{index}"})
        payload = manager.to_payload()
        other = CorpusManager()
        assert other.merge_payload(payload) == 3
        version = other.version
        assert other.merge_payload(payload) == 0
        assert other.version == version
        assert len(other) == len(manager)

    def test_merge_none_and_empty_are_noops(self):
        manager = CorpusManager()
        assert manager.merge_payload(None) == 0
        assert manager.merge_payload({}) == 0
        assert manager.version == 0

    def test_entries_merge_before_points(self):
        # A payload's point list includes its entries' coverage; merging
        # points first would make every entry non-novel and drop all
        # seeds.  The merge order guarantees the seeds survive.
        manager = CorpusManager()
        (program,) = _programs(1)
        _offer(manager, program, {"t.a", "t.b"})
        receiver = CorpusManager()
        receiver.merge_payload(manager.to_payload())
        assert len(receiver) == 1

    def test_delta_window(self):
        manager = CorpusManager()
        base, fresh = _programs(2)
        _offer(manager, base, {"t.a"})
        manager.mark_base()
        delta = manager.delta_payload()
        assert delta == {"points": [], "entries": []}
        _offer(manager, fresh, {"t.a", "t.b"})
        delta = manager.delta_payload()
        assert delta["points"] == ["t.b"]
        assert [e["fingerprint"] for e in delta["entries"]] \
            == [fresh.fingerprint()]
        # Replaying a delta on top of the base state reproduces the map.
        replica = CorpusManager()
        _offer(replica, base, {"t.a"})
        replica.merge_payload(delta)
        assert replica.coverage_points() == manager.coverage_points()


class TestStats:
    def test_stats_shape(self):
        manager = CorpusManager()
        stats = manager.stats()
        for key in ("admitted", "rejected", "evicted", "sampled",
                    "merged_entries", "merged_points", "entries",
                    "global_points", "version"):
            assert key in stats
        assert stats["entries"] == 0
        assert CorpusManager().max_entries == DEFAULT_MAX_ENTRIES
