"""Tests for the cumulative coverage database."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage.database import CoverageDatabase


class TestRecord:
    def test_new_points_returned(self):
        db = CoverageDatabase()
        assert db.record(0, ["a", "b"]) == {"a", "b"}
        assert db.record(1, ["b", "c"]) == {"c"}
        assert db.covered_count == 3

    def test_first_hit(self):
        db = CoverageDatabase()
        db.record(0, ["a"])
        db.record(5, ["a", "b"])
        assert db.first_hit("a") == 0
        assert db.first_hit("b") == 5
        assert db.first_hit("zzz") is None

    def test_space_enforced(self):
        db = CoverageDatabase(space=frozenset({"a"}))
        with pytest.raises(ValueError):
            db.record(0, ["nope"])

    def test_percent(self):
        db = CoverageDatabase(space=frozenset({"a", "b", "c", "d"}))
        db.record(0, ["a"])
        assert db.percent() == pytest.approx(25.0)

    def test_percent_requires_space(self):
        with pytest.raises(ValueError):
            CoverageDatabase().percent()

    def test_is_covered(self):
        db = CoverageDatabase()
        db.record(0, ["a"])
        assert db.is_covered("a")
        assert not db.is_covered("b")


class TestCurve:
    def test_curve_monotonic(self):
        db = CoverageDatabase()
        db.record(0, ["a"])
        db.record(1, [])
        db.record(2, ["b", "c"])
        curve = db.curve()
        assert [s.covered for s in curve] == [1, 1, 3]
        assert [s.test_index for s in curve] == [0, 1, 2]

    def test_curve_at(self):
        db = CoverageDatabase()
        db.record(0, ["a"])
        db.record(3, ["b"])
        samples = db.curve_at([0, 1, 3, 10])
        assert [s.covered for s in samples] == [1, 1, 2, 2]

    def test_tests_to_reach(self):
        db = CoverageDatabase()
        db.record(0, ["a"])
        db.record(1, ["b", "c"])
        assert db.tests_to_reach(1) == 1
        assert db.tests_to_reach(3) == 2
        assert db.tests_to_reach(10) is None


# ----------------------------------------------------------------- properties
@given(st.lists(st.sets(st.integers(0, 50).map(lambda i: f"p{i}"), max_size=10),
                max_size=20))
@settings(max_examples=80, deadline=None)
def test_curve_is_nondecreasing_and_matches_union(test_coverages):
    db = CoverageDatabase()
    union = set()
    for index, points in enumerate(test_coverages):
        new = db.record(index, points)
        assert new == points - union
        union |= points
    curve = db.curve()
    assert all(curve[i].covered <= curve[i + 1].covered for i in range(len(curve) - 1))
    assert db.covered_count == len(union)
