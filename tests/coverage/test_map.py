"""Tests and properties for CoverageMap."""

import pytest
from hypothesis import given, strategies as st

from repro.coverage.map import CoverageMap

points_strategy = st.sets(st.text(alphabet="abcdef.0123456789", min_size=1, max_size=12),
                          max_size=40)


class TestBasics:
    def test_empty(self):
        cov = CoverageMap()
        assert len(cov) == 0
        assert "x" not in cov

    def test_add_new_and_duplicate(self):
        cov = CoverageMap()
        assert cov.add("a.b") is True
        assert cov.add("a.b") is False
        assert len(cov) == 1

    def test_update_counts_new(self):
        cov = CoverageMap({"a"})
        assert cov.update(["a", "b", "c"]) == 2

    def test_new_points(self):
        cov = CoverageMap({"a", "b"})
        assert cov.new_points(["b", "c"]) == {"c"}

    def test_merge(self):
        merged = CoverageMap({"a"}).merge(CoverageMap({"b"}))
        assert set(merged) == {"a", "b"}

    def test_iteration_and_contains(self):
        cov = CoverageMap({"a", "b"})
        assert sorted(cov) == ["a", "b"]
        assert "a" in cov


class TestSpace:
    def test_fraction_and_percent(self):
        space = frozenset({"a", "b", "c", "d"})
        cov = CoverageMap({"a", "b"}, space=space)
        assert cov.fraction() == pytest.approx(0.5)
        assert cov.percent() == pytest.approx(50.0)

    def test_outside_space_rejected_on_init(self):
        with pytest.raises(ValueError):
            CoverageMap({"zzz"}, space=frozenset({"a"}))

    def test_outside_space_rejected_on_add(self):
        cov = CoverageMap(space=frozenset({"a"}))
        with pytest.raises(ValueError):
            cov.add("b")

    def test_fraction_requires_space(self):
        with pytest.raises(ValueError):
            CoverageMap({"a"}).fraction()


# ----------------------------------------------------------------- properties
@given(points_strategy, points_strategy)
def test_update_is_union(first, second):
    cov = CoverageMap(first)
    new = cov.update(second)
    assert set(cov.points) == first | second
    assert new == len(second - first)


@given(points_strategy, points_strategy)
def test_merge_commutative(first, second):
    a = CoverageMap(first).merge(CoverageMap(second))
    b = CoverageMap(second).merge(CoverageMap(first))
    assert a.points == b.points


@given(points_strategy)
def test_idempotent_update(points):
    cov = CoverageMap(points)
    assert cov.update(points) == 0
    assert set(cov.points) == points
