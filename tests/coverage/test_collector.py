"""Tests for the per-run coverage collector."""

from repro.coverage.collector import CoverageCollector


class TestCollector:
    def test_hit_and_len(self):
        collector = CoverageCollector()
        collector.hit("a")
        collector.hit("a")
        collector.hit("b")
        assert len(collector) == 2
        assert collector.hits == {"a", "b"}

    def test_hit_many(self):
        collector = CoverageCollector()
        collector.hit_many(["a", "b", "c"])
        assert len(collector) == 3

    def test_reset(self):
        collector = CoverageCollector()
        collector.hit("a")
        collector.reset()
        assert len(collector) == 0

    def test_hits_is_snapshot(self):
        collector = CoverageCollector()
        collector.hit("a")
        snapshot = collector.hits
        collector.hit("b")
        assert snapshot == {"a"}

    def test_hits_not_refrozen_when_unchanged(self):
        collector = CoverageCollector()
        collector.hit_many(["a", "b"])
        first = collector.hits
        assert collector.hits is first  # memoised between reads
        collector.hit("c")
        assert collector.hits == {"a", "b", "c"}

    def test_reset_invalidates_snapshot(self):
        collector = CoverageCollector()
        collector.hit("a")
        assert collector.hits == {"a"}
        collector.reset()
        assert collector.hits == frozenset()
        collector.hit("b")  # bound fast paths survive reset
        collector.hit_many(["c"])
        assert collector.hits == {"b", "c"}
