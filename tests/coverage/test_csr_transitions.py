"""Tests of the ProcessorFuzz-style CSR-transition coverage model."""

import pytest

from repro.coverage.csr_transitions import (
    TRACKED_CSRS,
    TRANSITION_MARKER,
    CsrTransitionTracker,
    _MSTATUS_RESET,
    count_transition_points,
    is_transition_point,
    transition_point,
    transition_space,
    transitions_of_records,
)
from repro.isa import csr as csrdefs
from repro.isa.exceptions import TrapCause
from repro.isa.instruction import Instruction
from repro.isa.scenarios import TrapScenarioGenerator
from repro.rtl.registry import make_dut
from repro.sim.golden import GoldenModel
from repro.sim.state import _CSR_RESET_VALUES
from repro.sim.trace import CommitRecord
from tests.conftest import make_program


def _trap_record(cause, pc=0x4000_0000, tval=0):
    return CommitRecord(step=0, pc=pc, word=0, mnemonic="illegal",
                        trap=cause, next_pc=pc + 4, trap_tval=tval)


def _csr_write_record(address, value):
    return CommitRecord(step=0, pc=0x4000_0000, word=0, mnemonic="csrrw",
                        csr_addr=address, csr_value=value, next_pc=0x4000_0004)


class TestSpace:
    def test_space_is_ordered_class_pairs(self):
        space = transition_space()
        for address, (classes, _) in TRACKED_CSRS.items():
            expected = len(classes) * (len(classes) - 1)
            name = csrdefs.csr_name(address)
            owned = {p for p in space if p.startswith(f"csr.{name}.")}
            assert len(owned) == expected

    def test_point_naming_scheme(self):
        point = transition_point(csrdefs.MCAUSE, "breakpoint", "illegal_instruction")
        assert point == "csr.mcause.breakpoint->illegal_instruction"
        assert is_transition_point(point)
        assert not is_transition_point("csr.mcause.read")
        assert not is_transition_point("trap.breakpoint")

    def test_marker_is_unique_to_the_family(self):
        """No other coverage family may ever use the transition marker."""
        dut = make_dut("cva6", bugs=[], coverage_model="base")
        assert not any(TRANSITION_MARKER in p for p in dut.coverage_space())

    def test_mstatus_reset_value_pinned_to_arch_state(self):
        assert _CSR_RESET_VALUES[csrdefs.MSTATUS] == _MSTATUS_RESET


class TestTracker:
    def test_starts_in_reset_classes(self):
        tracker = CsrTransitionTracker()
        assert tracker.current_class(csrdefs.MSTATUS) == "reset"
        assert tracker.current_class(csrdefs.MEPC) == "zero"
        assert (tracker.current_class(csrdefs.MCAUSE)
                == "instruction_address_misaligned")

    def test_trap_commit_moves_the_three_trap_csrs(self):
        tracker = CsrTransitionTracker()
        points = tracker.observe(_trap_record(
            TrapCause.BREAKPOINT, pc=0x4000_0000, tval=0x4000_0000))
        assert set(points) == {
            "csr.mcause.instruction_address_misaligned->breakpoint",
            "csr.mepc.zero->code",
            "csr.mtval.zero->code",
        }

    def test_same_class_produces_no_transition(self):
        tracker = CsrTransitionTracker()
        first = tracker.observe(_trap_record(TrapCause.BREAKPOINT,
                                             pc=0x4000_0000, tval=0))
        assert any("mcause" in p for p in first)
        again = tracker.observe(_trap_record(TrapCause.BREAKPOINT,
                                             pc=0x4000_0004, tval=0))
        assert not any("mcause" in p for p in again)  # still breakpoint class

    def test_explicit_csr_write_moves_the_written_csr(self):
        tracker = CsrTransitionTracker()
        points = tracker.observe(_csr_write_record(csrdefs.MSCRATCH, 7))
        assert points == ("csr.mscratch.zero->nonzero",)
        back = tracker.observe(_csr_write_record(csrdefs.MSCRATCH, 0))
        assert back == ("csr.mscratch.nonzero->zero",)

    def test_untracked_csr_writes_are_ignored(self):
        tracker = CsrTransitionTracker()
        assert tracker.observe(_csr_write_record(csrdefs.MCOUNTEREN, 5)) == ()

    def test_software_written_junk_cause_classifies_as_other(self):
        tracker = CsrTransitionTracker()
        points = tracker.observe(_csr_write_record(csrdefs.MCAUSE, 0xDEAD))
        assert points == ("csr.mcause.instruction_address_misaligned->other",)

    def test_emitted_points_stay_inside_the_space(self):
        space = transition_space()
        tracker = CsrTransitionTracker()
        records = [
            _trap_record(cause, pc=pc, tval=tval)
            for cause in TrapCause
            for pc, tval in ((0, 0), (0x4000_0000, 0x4000_4000),
                             (0xFFFF_0000, 0xFFFF_FFFF))
        ] + [
            _csr_write_record(address, value)
            for address in TRACKED_CSRS
            for value in (0, 1, 0x1800, 0x4000_0008, 0x4000_4008, 2**63)
        ]
        emitted = set()
        for record in records:
            emitted.update(tracker.observe(record))
        assert emitted
        assert emitted <= space


class TestGoldenTraceCollection:
    def test_transitions_of_records_matches_incremental_tracker(self):
        program = make_program([
            Instruction("csrrwi", rd=1, imm=9, csr=csrdefs.MSCRATCH),
            Instruction("ebreak"),
            Instruction("csrrwi", rd=0, imm=0, csr=csrdefs.MSCRATCH),
            Instruction("ecall"),
        ])
        execution = GoldenModel().run(program)
        replayed = transitions_of_records(execution.records)
        tracker = CsrTransitionTracker()
        incremental = set()
        for record in execution.records:
            incremental.update(tracker.observe(record))
        assert replayed == incremental
        assert "csr.mscratch.zero->nonzero" in replayed
        assert "csr.mscratch.nonzero->zero" in replayed
        assert any(p.startswith("csr.mcause.") for p in replayed)

    @pytest.mark.parametrize("dut_name", ["cva6", "rocket", "boom"])
    def test_clean_dut_emits_exactly_the_golden_trace_transitions(self, dut_name):
        """RTL-hook emission == golden-record derivation, per DUT, property-style."""
        golden = GoldenModel()
        dut = make_dut(dut_name, bugs=[], coverage_model="csr")
        generator = TrapScenarioGenerator(rng=99)
        for program in generator.generate_many(12):
            expected = transitions_of_records(golden.run(program).records)
            run = dut.run(program)
            emitted = {p for p in run.coverage if is_transition_point(p)}
            assert emitted == expected

    def test_count_transition_points(self):
        points = ["csr.mscratch.zero->nonzero", "csr.mscratch.read",
                  "decode.addi", "csr.mepc.zero->code"]
        assert count_transition_points(points) == 2


class TestDutIntegration:
    def test_csr_model_space_is_superset_of_base(self):
        base = make_dut("rocket", bugs=[], coverage_model="base")
        csr = make_dut("rocket", bugs=[], coverage_model="csr")
        assert base.coverage_space() < csr.coverage_space()
        assert (csr.coverage_space() - base.coverage_space()
                == frozenset(transition_space()))

    def test_base_model_emits_no_transition_points(self):
        dut = make_dut("rocket", bugs=[])
        program = make_program([
            Instruction("csrrwi", rd=1, imm=9, csr=csrdefs.MSCRATCH),
            Instruction("ecall"),
        ])
        run = dut.run(program)
        assert not any(is_transition_point(p) for p in run.coverage)

    def test_unknown_coverage_model_rejected(self):
        with pytest.raises(ValueError, match="coverage model"):
            make_dut("rocket", bugs=[], coverage_model="bogus")
