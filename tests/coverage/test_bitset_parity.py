"""Bitset <-> string-tuple coverage parity, property-style.

The DUT executor records coverage as an integer bitset
(:mod:`repro.coverage.bitset`); the pre-bitset string-tuple implementation
survives as :class:`~repro.rtl.harness.LegacyCoverageExecutor`.  These
tests run seeded user and trap corpora through *both* emission paths --
for all three DUTs, both coverage models, clean and bug-injected -- and
assert the materialised coverage sets are identical, the traces agree and
everything stays inside the enumerated coverage space.  Any divergence in
the memo keys, mask tables or per-DUT structural emitters shows up here as
a named point diff.
"""

import pytest

from repro.fuzzing.mutation import MutationEngine
from repro.isa.generator import SeedGenerator
from repro.isa.scenarios import TrapScenarioGenerator
from repro.rtl.registry import make_dut

DUT_NAMES = ("cva6", "rocket", "boom")
COVERAGE_MODELS = ("base", "csr")


def _user_corpus():
    """Seeded user-level programs plus mutants (mutation yields illegal words)."""
    seeds = SeedGenerator(rng=20260729).generate_many(8)
    corpus = list(seeds)
    engine = MutationEngine(rng=20260730)
    for parent in seeds[:4]:
        corpus.extend(engine.mutate(parent, count=2))
    return corpus


def _trap_corpus():
    """Trap/CSR scenario programs driving the mcause/mepc/mtval paths."""
    return TrapScenarioGenerator(rng=20260731).generate_many(6)


@pytest.fixture(scope="module")
def corpora():
    return {"user": _user_corpus(), "trap": _trap_corpus()}


def _run_both(name, corpus, coverage_model="base", bugs=()):
    bitset_dut = make_dut(name, bugs=list(bugs), coverage_model=coverage_model)
    legacy_dut = make_dut(name, bugs=list(bugs), coverage_model=coverage_model)
    legacy_dut.bitset_coverage = False
    assert legacy_dut.coverage_space() == bitset_dut.coverage_space()
    space = bitset_dut.coverage_space()
    for program in corpus:
        fast = bitset_dut.run(program)
        slow = legacy_dut.run(program)
        diff = fast.coverage ^ slow.coverage
        assert not diff, (
            f"{name}/{coverage_model}: bitset and legacy coverage diverged "
            f"on {program.program_id}: {sorted(diff)[:8]}")
        assert fast.coverage <= space
        assert fast.fired_bugs == slow.fired_bugs
        assert ([r.arch_key() for r in fast.execution.records]
                == [r.arch_key() for r in slow.execution.records])


@pytest.mark.parametrize("coverage_model", COVERAGE_MODELS)
@pytest.mark.parametrize("name", DUT_NAMES)
def test_user_corpus_parity(corpora, name, coverage_model):
    _run_both(name, corpora["user"], coverage_model=coverage_model)


@pytest.mark.parametrize("coverage_model", COVERAGE_MODELS)
@pytest.mark.parametrize("name", DUT_NAMES)
def test_trap_corpus_parity(corpora, name, coverage_model):
    _run_both(name, corpora["trap"], coverage_model=coverage_model)


@pytest.mark.parametrize("name", DUT_NAMES)
def test_default_bug_set_parity(corpora, name):
    """Bug hooks (incl. decode substitution) emit identically on both paths."""
    dut = make_dut(name)  # default (full) bug set for the core
    _run_both(name, corpora["user"] + corpora["trap"],
              bugs=[bug.bug_id for bug in dut.bugs])


def test_legacy_executor_is_selected_by_flag():
    from repro.rtl.harness import DutExecutor, LegacyCoverageExecutor

    dut = make_dut("rocket", bugs=[])
    dut.run(_user_corpus()[0])
    assert type(dut._last_executor) is DutExecutor
    dut.bitset_coverage = False
    dut.run(_user_corpus()[0])
    assert type(dut._last_executor) is LegacyCoverageExecutor
