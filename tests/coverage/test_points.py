"""Tests for coverage-point naming."""

import pytest

from repro.coverage.points import coverage_point, parse_point, point_module


class TestCoveragePoint:
    def test_simple(self):
        assert coverage_point("decode", "addi") == "decode.addi"

    def test_mixed_types(self):
        assert coverage_point("dcache", "set7", "miss") == "dcache.set7.miss"
        assert coverage_point("rob", 3, "alloc") == "rob.3.alloc"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            coverage_point()


class TestParsePoint:
    def test_roundtrip(self):
        point = coverage_point("a", "b", "c")
        assert parse_point(point) == ("a", "b", "c")

    def test_module(self):
        assert point_module("decode.addi.rd_zero") == "decode"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            parse_point("")
