"""Tests for the coverage-point bit registry."""

from repro.coverage.bitset import GLOBAL_BITS, PointBitIndex


class TestPointBitIndex:
    def test_bits_are_stable_and_dense(self):
        index = PointBitIndex()
        a = index.bit("mod.a")
        b = index.bit("mod.b")
        assert a != b
        assert index.bit("mod.a") == a  # stable on re-registration
        assert len(index) == 2
        assert "mod.a" in index and "mod.c" not in index

    def test_mask_round_trips_through_points_of(self):
        index = PointBitIndex()
        points = {"x.1", "x.2", "y.3"}
        mask = index.mask(points)
        assert index.points_of(mask) == frozenset(points)
        assert index.points_of(0) == frozenset()

    def test_masks_compose_with_or(self):
        index = PointBitIndex()
        left = index.mask(["a", "b"])
        right = index.mask(["b", "c"])
        assert index.points_of(left | right) == {"a", "b", "c"}

    def test_single_point_mask_is_one_bit(self):
        index = PointBitIndex()
        mask = index.mask(["only"])
        assert mask.bit_count() == 1
        assert index.points_of(mask) == {"only"}

    def test_global_registry_exists(self):
        bit = GLOBAL_BITS.bit("test.bitset.global.point")
        assert GLOBAL_BITS.bit("test.bitset.global.point") == bit
