"""Directed tests for the injected vulnerabilities V1-V7.

Each test builds a minimal program that deterministically exercises one
bug's trigger condition and checks that (a) the DUT diverges from the golden
model, and (b) the divergence is attributed to the right bug id.  A matching
negative test checks the bug does *not* fire without its trigger.
"""

import pytest

from repro.fuzzing.differential import DifferentialTester
from repro.isa import csr as csrdefs
from repro.isa.exceptions import TrapCause
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.bugs import (
    BUGS_BY_ID,
    CVA6_BUG_IDS,
    ROCKET_BUG_IDS,
    make_bug,
    make_bugs,
)
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel
from repro.sim.golden import GoldenModel

DATA_UPPER = 0x40004  # lui immediate for the data region base


def _program(*instructions):
    return TestProgram(instructions=tuple(instructions))


def _detect(dut, program):
    golden = GoldenModel().run(program)
    dut_run = dut.run(program)
    return DifferentialTester().check(golden, dut_run), dut_run


class TestBugRegistry:
    def test_all_seven_bugs_known(self):
        assert set(BUGS_BY_ID) == {"V1", "V2", "V3", "V4", "V5", "V6", "V7"}

    def test_processor_attribution(self):
        assert set(CVA6_BUG_IDS) == {"V1", "V2", "V3", "V4", "V5", "V6"}
        assert ROCKET_BUG_IDS == ("V7",)
        for bug_id in CVA6_BUG_IDS:
            assert BUGS_BY_ID[bug_id]().processor == "cva6"
        assert BUGS_BY_ID["V7"]().processor == "rocket"

    def test_cwe_numbers_match_table1(self):
        expected = {"V1": 440, "V2": 1242, "V3": 1202, "V4": 1202,
                    "V5": 1252, "V6": 1281, "V7": 1201}
        for bug_id, cwe in expected.items():
            assert BUGS_BY_ID[bug_id]().cwe == cwe

    def test_make_bug(self):
        assert make_bug("v3").bug_id == "V3"
        bug = make_bug("V5")
        assert make_bug(bug) is bug
        with pytest.raises(KeyError):
            make_bug("V99")
        assert [b.bug_id for b in make_bugs(["V1", "V2"])] == ["V1", "V2"]

    def test_default_bug_sets_on_models(self):
        assert {b.bug_id for b in CVA6Model().bugs} == set(CVA6_BUG_IDS)
        assert {b.bug_id for b in RocketModel().bugs} == {"V7"}


class TestV1FenceIDecode:
    def _trigger(self):
        return _program(
            Instruction("lui", rd=10, imm=DATA_UPPER),
            Instruction("addi", rd=5, rs1=0, imm=1),
            Instruction("sd", rs1=10, rs2=5, imm=0),   # store: buffer draining
            Instruction("fence.i"),                    # broken decode path
            Instruction("ecall"),
        )

    def test_detected(self):
        report, dut_run = _detect(CVA6Model(bugs=["V1"]), self._trigger())
        assert report.found_mismatch
        assert report.detected_bugs == {"V1"}
        assert dut_run.bug_effect_steps["V1"] == 3

    def test_not_triggered_without_recent_store(self):
        program = _program(
            Instruction("lui", rd=10, imm=DATA_UPPER),
            Instruction("fence.i"),
            Instruction("ecall"),
        )
        report, _ = _detect(CVA6Model(bugs=["V1"]), program)
        assert not report.found_mismatch


class TestV2IllegalExecuted:
    #: opcode OP, funct3 0, funct7 0x04 (reserved), rd=5, rs1=6, rs2=7.
    _BROKEN_WORD = (0x04 << 25) | (7 << 20) | (6 << 15) | (0 << 12) | (5 << 7) | 0x33

    def test_broken_word_is_actually_illegal(self):
        from repro.isa.decoder import decode_word

        assert decode_word(self._BROKEN_WORD).is_illegal

    def test_detected(self):
        program = _program(
            Instruction("addi", rd=6, rs1=0, imm=11),
            Instruction("addi", rd=7, rs1=0, imm=31),
            Instruction.illegal(self._BROKEN_WORD),
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V2"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V2"}
        # The DUT executed the illegal word as ADD: x5 = 11 + 31.
        assert dut_run.execution.records[2].rd_value == 42

    def test_legal_funct7_not_affected(self):
        program = _program(Instruction("add", rd=5, rs1=6, rs2=7),
                           Instruction("ecall"))
        report, _ = _detect(CVA6Model(bugs=["V2"]), program)
        assert not report.found_mismatch


class TestV3ExceptionPropagation:
    def test_detected(self):
        program = _program(
            Instruction("ld", rd=5, rs1=0, imm=0),    # access fault at address 0
            Instruction.illegal(0x0000007F),           # illegal right after
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V3"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V3"}
        # The DUT reports the stale (load-access-fault) cause for the illegal.
        assert dut_run.execution.records[1].trap is TrapCause.LOAD_ACCESS_FAULT

    def test_not_triggered_when_far_apart(self):
        filler = [Instruction("addi", rd=6, rs1=6, imm=1)] * 4
        program = _program(
            Instruction("ld", rd=5, rs1=0, imm=0),
            *filler,
            Instruction.illegal(0x0000007F),
            Instruction("ecall"),
        )
        report, _ = _detect(CVA6Model(bugs=["V3"]), program)
        assert not report.found_mismatch


class TestV4CacheCoherency:
    def test_detected(self):
        program = _program(
            Instruction("lui", rd=10, imm=DATA_UPPER),
            Instruction("addi", rd=5, rs1=0, imm=77),
            Instruction("sd", rs1=10, rs2=5, imm=0),          # dirty line, non-zero
            Instruction("amoadd.d", rd=6, rs1=10, rs2=0),     # atomic reads stale 0
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V4"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V4"}
        assert dut_run.execution.records[3].rd_value == 0

    def test_not_triggered_without_dirty_line(self):
        program = _program(
            Instruction("lui", rd=10, imm=DATA_UPPER),
            Instruction("amoadd.d", rd=6, rs1=10, rs2=0),
            Instruction("ecall"),
        )
        report, _ = _detect(CVA6Model(bugs=["V4"]), program)
        assert not report.found_mismatch


class TestV5MissingException:
    def test_detected_for_unmapped_high_address(self):
        program = _program(
            Instruction("addi", rd=5, rs1=0, imm=-1),   # x5 = 0xFFFF...FFFF
            Instruction("andi", rd=5, rs1=5, imm=-8),   # keep it 8-byte aligned
            Instruction("ld", rd=6, rs1=5, imm=0),      # fault silently dropped
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V5"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V5"}
        assert dut_run.execution.records[2].trap is None

    def test_low_invalid_address_still_faults(self):
        program = _program(
            Instruction("ld", rd=6, rs1=0, imm=16),     # address 16: still reported
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V5"]), program)
        assert not report.found_mismatch
        assert dut_run.execution.records[0].trap is TrapCause.LOAD_ACCESS_FAULT


class TestV6UnimplementedCsr:
    def test_detected_on_read(self):
        program = _program(
            Instruction("csrrs", rd=5, rs1=0, csr=0x7B0),   # dcsr
            Instruction("ecall"),
        )
        report, dut_run = _detect(CVA6Model(bugs=["V6"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V6"}
        record = dut_run.execution.records[0]
        assert record.trap is None
        assert record.rd_value not in (None, 0)

    def test_other_unimplemented_csrs_still_trap(self):
        program = _program(
            Instruction("csrrs", rd=5, rs1=0, csr=0x180),   # satp: not part of V6
            Instruction("ecall"),
        )
        report, _ = _detect(CVA6Model(bugs=["V6"]), program)
        assert not report.found_mismatch


class TestV7EbreakInstret:
    def test_detected_when_instret_read_after_ebreak(self):
        program = _program(
            Instruction("ebreak"),
            Instruction("csrrs", rd=5, rs1=0, csr=csrdefs.MINSTRET),
            Instruction("ecall"),
        )
        report, dut_run = _detect(RocketModel(bugs=["V7"]), program)
        assert report.found_mismatch
        assert report.detected_bugs == {"V7"}
        golden = GoldenModel().run(program)
        golden_read = golden.records[1].rd_value
        dut_read = dut_run.execution.records[1].rd_value
        assert dut_read == golden_read - 1

    def test_silent_without_instret_read(self):
        program = _program(
            Instruction("ebreak"),
            Instruction("addi", rd=5, rs1=0, imm=3),
            Instruction("ecall"),
        )
        report, dut_run = _detect(RocketModel(bugs=["V7"]), program)
        # The defect fired (count skipped) but is architecturally invisible.
        assert "V7" in dut_run.fired_bugs
        assert not report.found_mismatch


class TestBugsOnlyFireOnTheirProcessorDefaults:
    def test_boom_default_has_no_bugs(self):
        from repro.rtl.boom import BoomModel

        assert BoomModel().bugs == []
