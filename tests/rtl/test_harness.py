"""Tests for the DUT harness: coverage families, executor instrumentation and
the central invariant that a defect-free DUT matches the golden model."""

import pytest

from repro.coverage.points import point_module
from repro.fuzzing.differential import compare_traces
from repro.isa.generator import SeedGenerator
from repro.isa.instruction import Instruction
from repro.rtl.cva6 import CVA6Model
from repro.rtl.harness import (
    DutConfig,
    common_space,
    decode_points,
    decode_space,
    operand_points,
    operand_space,
)
from repro.rtl.rocket import RocketModel
from repro.rtl.boom import BoomModel
from repro.sim.golden import GoldenModel


class TestDutConfig:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            DutConfig(icache_sets=0)
        with pytest.raises(ValueError):
            DutConfig(hazard_window=-1)


class TestCoverageFamilies:
    def test_decode_points_within_space(self):
        space = decode_space()
        assert decode_points(Instruction("addi", rd=1), 0)[0] in space
        assert decode_points(Instruction.illegal(0x7F), 0x7F)[0] in space

    def test_operand_points_within_space(self):
        space = operand_space()
        for instr in (Instruction("addi", rd=0, rs1=1, imm=-5),
                      Instruction("add", rd=3, rs1=2, rs2=2),
                      Instruction("sd", rs1=1, rs2=1, imm=0),
                      Instruction("jal", rd=1, imm=8)):
            for point in operand_points(instr):
                assert point in space

    def test_common_space_has_expected_modules(self):
        modules = {point_module(p) for p in common_space()}
        assert {"decode", "operand", "alu", "branch", "mem", "atomic",
                "trap", "csr", "sys", "fencepath"} <= modules


class TestCoverageSpace:
    def test_space_is_cached_and_frozen(self):
        dut = CVA6Model(bugs=[])
        assert dut.coverage_space() is dut.coverage_space()
        assert isinstance(dut.coverage_space(), frozenset)

    def test_space_sizes_ordered_like_the_paper(self):
        """BOOM has the largest coverage space, CVA6 is in between, as the
        paper's covered-point counts (Fig. 3) suggest."""
        cva6 = CVA6Model(bugs=[]).total_coverage_points
        rocket = RocketModel(bugs=[]).total_coverage_points
        boom = BoomModel(bugs=[]).total_coverage_points
        assert boom > cva6 > 0
        assert boom > rocket > 0

    def test_names(self):
        assert CVA6Model().name == "cva6"
        assert RocketModel().name == "rocket"
        assert BoomModel().name == "boom"


def _random_seeds(count, seed=0):
    return SeedGenerator(rng=seed).generate_many(count)


class TestCleanDutMatchesGolden:
    """The central differential-testing invariant: without injected bugs,
    every DUT produces a commit trace identical to the golden model."""

    @pytest.mark.parametrize("model_cls", [CVA6Model, RocketModel, BoomModel])
    def test_random_programs_match(self, model_cls):
        dut = model_cls(bugs=[])
        golden = GoldenModel()
        for program in _random_seeds(15, seed=21):
            golden_result = golden.run(program)
            dut_result = dut.run(program)
            assert compare_traces(golden_result, dut_result.execution) is None

    def test_directed_program_matches(self, memory_program):
        dut = RocketModel(bugs=[])
        golden_result = GoldenModel().run(memory_program)
        dut_result = dut.run(memory_program)
        assert compare_traces(golden_result, dut_result.execution) is None
        assert dut_result.fired_bugs == frozenset()


class TestDutRunResult:
    def test_coverage_emitted_and_within_space(self):
        dut = CVA6Model(bugs=[])
        space = dut.coverage_space()
        for program in _random_seeds(10, seed=5):
            result = dut.run(program)
            assert result.coverage, "every run must produce some coverage"
            assert result.coverage <= space
            assert result.coverage_count == len(result.coverage)

    def test_run_isolation(self, straightline_program):
        """Coverage and microarchitectural state must not leak across runs."""
        dut = RocketModel(bugs=[])
        first = dut.run(straightline_program)
        second = dut.run(straightline_program)
        assert first.coverage == second.coverage
        assert [r.arch_key() for r in first.execution.records] == \
            [r.arch_key() for r in second.execution.records]

    def test_structural_points_within_space(self):
        for model_cls in (CVA6Model, RocketModel, BoomModel):
            dut = model_cls(bugs=[])
            space = dut.coverage_space()
            for program in _random_seeds(5, seed=33):
                result = dut.run(program)
                outside = result.coverage - space
                assert not outside, f"{model_cls.__name__}: {sorted(outside)[:5]}"

    def test_deterministic_coverage(self):
        dut = BoomModel(bugs=[])
        program = _random_seeds(1, seed=9)[0]
        assert dut.run(program).coverage == dut.run(program).coverage
