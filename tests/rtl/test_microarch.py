"""Tests for the reusable microarchitectural components."""

import pytest

from repro.isa.encoding import InstrClass
from repro.rtl.microarch import (
    BranchPredictor,
    CacheModel,
    FunctionalUnitMonitor,
    HazardTracker,
)


class TestCacheModel:
    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            CacheModel("c", num_sets=0)

    def test_miss_then_hit(self):
        cache = CacheModel("dcache", num_sets=4, ways=2)
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert any(p.endswith(".miss") for p in first)
        assert any(p.endswith(".hit") for p in second)

    def test_same_set_different_tag_misses(self):
        cache = CacheModel("dcache", num_sets=4, ways=2, line_bytes=64)
        cache.access(0x0)
        points = cache.access(0x0 + 4 * 64)  # same set (set 0), different tag
        assert any(p.endswith(".miss") for p in points)

    def test_eviction_after_ways_exceeded(self):
        cache = CacheModel("dcache", num_sets=2, ways=1, line_bytes=64)
        cache.access(0x0)
        points = cache.access(0x0 + 2 * 64)  # same set, evicts the first line
        assert any(".evict" in p for p in points)
        assert any("writeback.clean" in p for p in points)

    def test_dirty_eviction(self):
        cache = CacheModel("dcache", num_sets=2, ways=1, line_bytes=64)
        cache.access(0x0, is_store=True)
        points = cache.access(0x0 + 2 * 64)
        assert any("writeback.dirty" in p for p in points)

    def test_line_is_dirty(self):
        cache = CacheModel("dcache", num_sets=4, ways=2)
        cache.access(0x200, is_store=True)
        assert cache.line_is_dirty(0x200)
        assert cache.line_is_dirty(0x23F)  # same 64-byte line
        assert not cache.line_is_dirty(0x400)

    def test_store_hit_marks_dirty(self):
        cache = CacheModel("dcache", num_sets=4, ways=2)
        cache.access(0x80, is_store=False)
        assert not cache.line_is_dirty(0x80)
        cache.access(0x80, is_store=True)
        assert cache.line_is_dirty(0x80)

    def test_reset(self):
        cache = CacheModel("dcache", num_sets=4, ways=2)
        cache.access(0x80, is_store=True)
        cache.reset()
        assert not cache.line_is_dirty(0x80)

    def test_emitted_points_within_space(self):
        cache = CacheModel("dcache", num_sets=4, ways=1)
        space = cache.space()
        emitted = set()
        for address in range(0, 0x2000, 72):
            emitted.update(cache.access(address, is_store=address % 144 == 0))
        assert emitted <= space

    def test_space_size(self):
        cache = CacheModel("c", num_sets=8, ways=2)
        # 3 per-set events + 2 writeback + 2 access kinds.
        assert len(cache.space()) == 8 * 3 + 4


class TestBranchPredictor:
    def test_space_size(self):
        assert len(BranchPredictor("b", entries=16).space()) == 16 * 2 + 2

    def test_outcome_points(self):
        predictor = BranchPredictor("b", entries=8)
        points = predictor.update(0x4000_0000, taken=True)
        assert any(p.endswith(".taken") for p in points)

    def test_learns_direction(self):
        predictor = BranchPredictor("b", entries=8)
        pc = 0x4000_0010
        predictor.update(pc, taken=True)
        predictor.update(pc, taken=True)
        points = predictor.update(pc, taken=True)
        assert "b.predict.correct" in points

    def test_mispredict_on_change(self):
        predictor = BranchPredictor("b", entries=8)
        pc = 0x4000_0010
        for _ in range(3):
            predictor.update(pc, taken=True)
        points = predictor.update(pc, taken=False)
        assert "b.predict.mispredict" in points

    def test_emitted_within_space(self):
        predictor = BranchPredictor("b", entries=4)
        space = predictor.space()
        emitted = set()
        for pc in range(0x4000_0000, 0x4000_0100, 4):
            emitted.update(predictor.update(pc, taken=pc % 8 == 0))
        assert emitted <= space


class TestHazardTracker:
    def test_raw_hazard_detected(self):
        tracker = HazardTracker(window=2)
        tracker.observe(rd=5, rs1=None, rs2=None)
        points = tracker.observe(rd=6, rs1=5, rs2=None)
        assert any("raw_dist1.rs1" in p for p in points)
        assert any("forward_reg.x5" in p for p in points)

    def test_distance_two(self):
        tracker = HazardTracker(window=3)
        tracker.observe(rd=5, rs1=None, rs2=None)
        tracker.observe(rd=6, rs1=None, rs2=None)
        points = tracker.observe(rd=7, rs1=None, rs2=5)
        assert any("raw_dist2.rs2" in p for p in points)

    def test_waw_hazard(self):
        tracker = HazardTracker(window=2)
        tracker.observe(rd=5, rs1=None, rs2=None)
        points = tracker.observe(rd=5, rs1=None, rs2=None)
        assert any("waw_dist1" in p for p in points)

    def test_x0_never_hazard(self):
        tracker = HazardTracker(window=2)
        tracker.observe(rd=0, rs1=None, rs2=None)
        points = tracker.observe(rd=1, rs1=0, rs2=None)
        assert any("no_hazard" in p for p in points)

    def test_window_limits_detection(self):
        tracker = HazardTracker(window=1)
        tracker.observe(rd=5, rs1=None, rs2=None)
        tracker.observe(rd=6, rs1=None, rs2=None)
        points = tracker.observe(rd=7, rs1=5, rs2=None)
        assert not any("raw" in p for p in points)

    def test_emitted_within_space(self):
        tracker = HazardTracker(window=2)
        space = tracker.space()
        emitted = set()
        for i in range(40):
            emitted.update(tracker.observe(rd=i % 8, rs1=(i + 1) % 8, rs2=(i + 3) % 8))
        assert emitted <= space


class TestFunctionalUnitMonitor:
    def test_ignores_non_muldiv(self):
        assert FunctionalUnitMonitor().observe(InstrClass.ARITH, 1, 2, 3) == []

    def test_mul_buckets(self):
        points = FunctionalUnitMonitor().observe(InstrClass.MUL, 0, 1, 0)
        assert "fu.mul.zero_one" in points

    def test_div_by_zero(self):
        points = FunctionalUnitMonitor().observe(InstrClass.DIV, 10, 0, 0)
        assert "fu.div.by_zero" in points

    def test_div_overflow(self):
        most_negative = 1 << 63
        minus_one = (1 << 64) - 1
        points = FunctionalUnitMonitor().observe(InstrClass.DIV, most_negative,
                                                 minus_one, most_negative)
        assert "fu.div.overflow" in points

    def test_mul_upper_nonzero(self):
        points = FunctionalUnitMonitor().observe(InstrClass.MUL, 2**40, 2**40, 2**63)
        assert "fu.mul.upper_nonzero" in points

    def test_emitted_within_space(self):
        monitor = FunctionalUnitMonitor()
        space = monitor.space()
        emitted = set()
        for a in (0, 1, 5, 2**63, 2**13):
            for b in (0, 1, 3, (1 << 64) - 1):
                emitted.update(monitor.observe(InstrClass.MUL, a, b, (a * b) & ((1 << 64) - 1)))
                emitted.update(monitor.observe(InstrClass.DIV, a, b, 0))
        assert emitted <= space
