"""Per-processor structural model tests (CVA6 / Rocket / BOOM specifics)."""


from repro.coverage.points import parse_point
from repro.isa.generator import SeedGenerator
from repro.rtl.boom import BoomModel
from repro.rtl.cva6 import CVA6Model
from repro.rtl.rocket import RocketModel


def _structural_prefixes(model):
    return {parse_point(p)[0] for p in model.structural_space()}


def _run_some(model, count=20, seed=3):
    generator = SeedGenerator(rng=seed)
    covered = set()
    for program in generator.generate_many(count):
        covered |= model.run(program).coverage
    return covered


class TestCVA6Structure:
    def test_structural_module_is_namespaced(self):
        assert _structural_prefixes(CVA6Model(bugs=[])) == {"cva6"}

    def test_fpu_family_exists_and_is_large(self):
        space = CVA6Model(bugs=[]).structural_space()
        fpu_points = {p for p in space if p.startswith("cva6.fpu.")}
        assert len(fpu_points) > 500

    def test_fpu_family_unreachable_by_integer_fuzzing(self):
        """Integer-only tests cannot exercise the FPU datapath, which is what
        keeps CVA6's coverage percentage the lowest (as in the paper)."""
        covered = _run_some(CVA6Model(bugs=[]), count=15)
        fpu_covered = {p for p in covered if p.startswith("cva6.fpu.")
                       and p != "cva6.fpu.fs_dirty"}
        assert fpu_covered == set()

    def test_scoreboard_and_issue_points_reachable(self):
        covered = _run_some(CVA6Model(bugs=[]), count=10)
        assert any(p.startswith("cva6.scoreboard.") for p in covered)
        assert any(p.startswith("cva6.issue.") for p in covered)
        assert any(p.startswith("cva6.frontend.") for p in covered)


class TestRocketStructure:
    def test_structural_module_is_namespaced(self):
        assert _structural_prefixes(RocketModel(bugs=[])) == {"rocket"}

    def test_pipeline_family_reachable(self):
        covered = _run_some(RocketModel(bugs=[]), count=10)
        stages = {parse_point(p)[2] for p in covered if p.startswith("rocket.pipe.")}
        assert {"if", "id", "ex", "mem", "wb"} <= stages

    def test_regfile_and_bypass_points(self):
        covered = _run_some(RocketModel(bugs=[]), count=15)
        assert any(p.startswith("rocket.regfile.write.") for p in covered)
        assert any(p.startswith("rocket.regfile.read.") for p in covered)
        assert any(p.startswith("rocket.pcgen.") for p in covered)

    def test_most_structural_space_reachable(self):
        """Rocket's structure is mostly reachable, giving it the high coverage
        percentage the paper reports relative to CVA6."""
        model = RocketModel(bugs=[])
        covered = _run_some(model, count=60, seed=11)
        structural = {p for p in model.structural_space()}
        reached = len(covered & structural) / len(structural)
        assert reached > 0.5


class TestBoomStructure:
    def test_structural_module_is_namespaced(self):
        assert _structural_prefixes(BoomModel(bugs=[])) == {"boom"}

    def test_out_of_order_bookkeeping_reachable(self):
        covered = _run_some(BoomModel(bugs=[]), count=15)
        for family in ("boom.rob.", "boom.iq.", "boom.rename.", "boom.prf.",
                       "boom.dualissue.", "boom.uop."):
            assert any(p.startswith(family) for p in covered), family

    def test_fp_issue_queue_unreachable(self):
        covered = _run_some(BoomModel(bugs=[]), count=15)
        assert not any(p.startswith("boom.iq.fp.") for p in covered)

    def test_boom_covers_more_points_than_others_on_same_stimulus(self):
        """On identical stimulus BOOM reports the most covered branch points,
        matching the ordering of Fig. 3."""
        seeds = SeedGenerator(rng=7).generate_many(15)
        totals = {}
        for name, model in (("cva6", CVA6Model(bugs=[])),
                            ("rocket", RocketModel(bugs=[])),
                            ("boom", BoomModel(bugs=[]))):
            covered = set()
            for program in seeds:
                covered |= model.run(program).coverage
            totals[name] = len(covered)
        assert totals["boom"] > totals["rocket"]
        assert totals["boom"] > totals["cva6"]


class TestConfigOverrides:
    def test_custom_config_changes_space(self):
        from repro.rtl.harness import DutConfig

        small = RocketModel(DutConfig(name="rocket", icache_sets=4, dcache_sets=4,
                                      cache_ways=1, bpred_entries=4, hazard_window=1),
                            bugs=[])
        default = RocketModel(bugs=[])
        assert small.total_coverage_points < default.total_coverage_points
        assert small.name == "rocket"
