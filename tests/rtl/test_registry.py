"""Tests for DUT registry construction."""

import pytest

from repro.rtl.boom import BoomModel
from repro.rtl.cva6 import CVA6Model
from repro.rtl.registry import available_duts, make_dut
from repro.rtl.rocket import RocketModel


class TestRegistry:
    def test_available(self):
        assert available_duts() == ("boom", "cva6", "rocket")

    def test_make_each(self):
        assert isinstance(make_dut("cva6"), CVA6Model)
        assert isinstance(make_dut("rocket"), RocketModel)
        assert isinstance(make_dut("boom"), BoomModel)

    def test_case_insensitive(self):
        assert isinstance(make_dut("CVA6"), CVA6Model)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_dut("xyz123")

    def test_bug_override(self):
        dut = make_dut("cva6", bugs=["V5"])
        assert [b.bug_id for b in dut.bugs] == ["V5"]

    def test_empty_bugs(self):
        assert make_dut("cva6", bugs=[]).bugs == []

    def test_default_bugs(self):
        assert len(make_dut("cva6").bugs) == 6
        assert len(make_dut("rocket").bugs) == 1
        assert len(make_dut("boom").bugs) == 0
