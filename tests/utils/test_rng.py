"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng, split_rng


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_same_tag_same_parent_state(self):
        a = derive_rng(make_rng(1), "mutation").integers(0, 10**6)
        b = derive_rng(make_rng(1), "mutation").integers(0, 10**6)
        assert a == b

    def test_different_tags_differ(self):
        parent = make_rng(1)
        a = derive_rng(parent, "a")
        b = derive_rng(parent, "b")
        assert list(a.integers(0, 10**6, 8)) != list(b.integers(0, 10**6, 8))


class TestSplitRng:
    def test_count(self):
        children = split_rng(make_rng(3), 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = split_rng(make_rng(3), 2)
        a = list(children[0].integers(0, 10**6, 8))
        b = list(children[1].integers(0, 10**6, 8))
        assert a != b

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            split_rng(make_rng(0), -1)

    def test_deterministic_given_parent_seed(self):
        first = [g.integers(0, 10**6) for g in split_rng(make_rng(9), 3)]
        second = [g.integers(0, 10**6) for g in split_rng(make_rng(9), 3)]
        assert first == second
