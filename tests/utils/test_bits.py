"""Unit and property tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    MASK32,
    MASK64,
    get_bit,
    get_bits,
    set_bit,
    set_bits,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestGetBit:
    def test_lsb(self):
        assert get_bit(0b1011, 0) == 1

    def test_zero_bit(self):
        assert get_bit(0b1011, 2) == 0

    def test_high_bit(self):
        assert get_bit(1 << 63, 63) == 1


class TestGetBits:
    def test_low_nibble(self):
        assert get_bits(0xABCD, 3, 0) == 0xD

    def test_middle_field(self):
        assert get_bits(0xABCD, 11, 4) == 0xBC

    def test_single_bit_range(self):
        assert get_bits(0b100, 2, 2) == 1

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            get_bits(0, 0, 1)


class TestSetBit:
    def test_set(self):
        assert set_bit(0, 3, 1) == 0b1000

    def test_clear(self):
        assert set_bit(0b1111, 1, 0) == 0b1101


class TestSetBits:
    def test_replace_field(self):
        assert set_bits(0xFF00, 7, 0, 0xAB) == 0xFFAB

    def test_field_truncated_to_width(self):
        assert set_bits(0, 3, 0, 0x1FF) == 0xF

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            set_bits(0, 2, 5, 1)


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative(self):
        assert sign_extend(0xFF, 8) == -1

    def test_minimum(self):
        assert sign_extend(0x80, 8) == -128

    def test_12_bit_immediate(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x800, 12) == -2048


class TestConversions:
    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1

    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == MASK64

    def test_to_unsigned_32(self):
        assert to_unsigned(-1, 32) == MASK32


# ----------------------------------------------------------------- properties
@given(st.integers(min_value=0, max_value=MASK64), st.integers(0, 63))
def test_get_set_bit_roundtrip(value, position):
    bit = get_bit(value, position)
    assert set_bit(value, position, bit) == value


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_signed_unsigned_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


@given(st.integers(min_value=0, max_value=MASK64), st.integers(1, 64))
def test_sign_extend_preserves_low_bits(value, bits):
    extended = sign_extend(value, bits)
    assert to_unsigned(extended, bits) == value & ((1 << bits) - 1)


@given(st.integers(min_value=0, max_value=MASK64),
       st.integers(0, 63), st.integers(0, 63),
       st.integers(min_value=0, max_value=MASK64))
def test_set_bits_only_changes_field(value, a, b, field):
    high, low = max(a, b), min(a, b)
    updated = set_bits(value, high, low, field)
    width = high - low + 1
    assert get_bits(updated, high, low) == field & ((1 << width) - 1)
    # Bits outside the field are untouched.
    mask = ((1 << width) - 1) << low
    assert updated & ~mask == value & ~mask
