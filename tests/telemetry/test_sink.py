"""Telemetry sinks: schema, file/TCP delivery, reconnect, spill, loss bounds.

The acceptance-critical test here is
``TestTcpSink.test_listener_kill_restart_loss_is_bounded``: kill the
listener mid-stream, restart it, and prove that every emitted event is
either received, spilled, or inside the documented sent-but-unread
window -- never silently gone.
"""

import json
import time

import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultRule
from repro.telemetry import (
    KINDS,
    DEFAULT_BUFFER_LIMIT,
    FileSink,
    TcpSink,
    TelemetryListener,
    TelemetryRecorder,
    TelemetrySink,
    decode_line,
    encode_event,
    make_event,
    parse_sink_spec,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


def _fast_backoff():
    """A near-zero schedule so reconnect gates never slow a test down."""
    return faults.Backoff(base=0.001, cap=0.002, jitter=0.0)


def _event(seq, **fields):
    return make_event("trial", seq=seq, ts=0.0, **fields)


class TestEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            make_event("no_such_kind", seq=0, ts=0.0)

    def test_encode_decode_round_trip(self):
        event = _event(3, coverage=12, bugs=["V5"])
        line = encode_event(event)
        assert line.endswith(b"\n")
        assert decode_line(line) == event

    def test_decode_tolerates_torn_and_blank_lines(self):
        line = encode_event(_event(0, coverage=1))
        assert decode_line(line[: len(line) // 2]) is None
        assert decode_line(b"") is None
        assert decode_line(b"   \n") is None
        assert decode_line(b"[1, 2]\n") is None  # non-object JSON

    def test_every_kind_constant_is_registered(self):
        assert {"run_start", "trial", "recovery", "worker_spawn",
                "worker_exit", "worker_restart", "host_degraded",
                "run_finish"} == set(KINDS)


class TestFileSink:
    def test_appends_ndjson_lines(self, tmp_path):
        path = tmp_path / "events.ndjson"
        sink = FileSink(str(path))
        sink.emit(_event(0, coverage=1))
        sink.emit(_event(1, coverage=2))
        sink.close()
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 2
        assert [decode_line(line)["seq"] for line in lines] == [0, 1]
        assert sink.stats() == {"sink": f"file:{path}", "sent": 2}

    def test_reopens_after_close(self, tmp_path):
        path = tmp_path / "events.ndjson"
        sink = FileSink(str(path))
        sink.emit(_event(0))
        sink.close()
        sink.emit(_event(1))  # lazily reopens in append mode
        sink.close()
        assert len(path.read_bytes().splitlines()) == 2

    def test_write_fault_raises_into_caller(self, tmp_path):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_SINK_WRITE, action="oserror"),
        )).injector())
        sink = FileSink(str(tmp_path / "events.ndjson"))
        with pytest.raises(OSError):
            sink.emit(_event(0))


class TestParseSinkSpec:
    def test_tcp_spec(self):
        sink = parse_sink_spec("tcp:127.0.0.1:9900", spill_path="spill.ndjson")
        assert isinstance(sink, TcpSink)
        assert (sink.host, sink.port, sink.spill_path) == (
            "127.0.0.1", 9900, "spill.ndjson")
        assert sink.buffer_limit == DEFAULT_BUFFER_LIMIT

    def test_file_and_bare_path_specs(self, tmp_path):
        explicit = parse_sink_spec(f"file:{tmp_path}/a.ndjson")
        bare = parse_sink_spec(f"{tmp_path}/b.ndjson")
        assert isinstance(explicit, FileSink)
        assert isinstance(bare, FileSink)

    def test_bad_tcp_spec_rejected(self):
        for spec in ("tcp:nohost", "tcp::9900", "tcp:host:notaport"):
            with pytest.raises(ValueError, match="expected tcp:HOST:PORT"):
                parse_sink_spec(spec)


class _ExplodingSink(TelemetrySink):
    def emit(self, event):
        raise RuntimeError("sink is on fire")

    def close(self):
        raise RuntimeError("still on fire")

    def stats(self):
        raise RuntimeError("even stats burn")

    def describe(self):
        return "exploding"


class TestRecorder:
    def test_disabled_recorder_is_a_noop(self):
        recorder = TelemetryRecorder(None)
        assert not recorder.enabled
        recorder.record("trial", coverage=1)
        recorder.close()
        assert recorder.stats() == {"events": 0, "errors": 0}

    def test_stamps_monotonic_seq(self, tmp_path):
        path = tmp_path / "events.ndjson"
        recorder = TelemetryRecorder(FileSink(str(path)))
        recorder.record("run_start", specs=1, trials=2, backend="serial")
        recorder.record("trial", coverage=3)
        recorder.close()
        events = [decode_line(line) for line in path.read_bytes().splitlines()]
        assert [event["seq"] for event in events] == [0, 1]
        assert all(isinstance(event["ts"], float) for event in events)

    def test_never_raises_into_the_campaign(self):
        recorder = TelemetryRecorder(_ExplodingSink())
        recorder.record("trial", coverage=1)  # emit explodes: swallowed
        recorder.close()  # close explodes: swallowed
        stats = recorder.stats()  # stats explodes: partial result, no raise
        assert stats["events"] == 0
        assert stats["errors"] == 2

    def test_unknown_kind_is_an_error_not_a_crash(self, tmp_path):
        recorder = TelemetryRecorder(FileSink(str(tmp_path / "e.ndjson")))
        with pytest.raises(ValueError):
            # make_event validation happens before the sink and is a
            # programming error at the call site, so it does surface.
            recorder.record("bogus_kind")


class TestTcpSink:
    def test_delivers_to_listener(self):
        with TelemetryListener() as listener:
            sink = TcpSink("127.0.0.1", listener.port, backoff=_fast_backoff())
            for seq in range(5):
                sink.emit(_event(seq, coverage=seq))
            sink.close()
            deadline = time.monotonic() + 5.0
            while (len(listener.snapshot()) < 5
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            received = listener.snapshot()
        assert [event["seq"] for event in received] == list(range(5))
        stats = sink.stats()
        assert stats["sent"] == 5
        assert stats["spilled"] == stats["dropped"] == 0

    def test_never_blocks_when_no_listener_exists(self, tmp_path):
        spill = tmp_path / "spill.ndjson"
        sink = TcpSink("127.0.0.1", 1, buffer_limit=4,
                       spill_path=str(spill), connect_timeout=0.05,
                       backoff=_fast_backoff())
        started = time.monotonic()
        for seq in range(50):
            sink.emit(_event(seq))
        sink.close()
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # degraded, not stalled
        stats = sink.stats()
        assert stats["sent"] == 0
        assert stats["spilled"] == 50
        assert stats["dropped"] == 0
        assert stats["buffered"] == 0
        assert len(spill.read_bytes().splitlines()) == 50
        assert stats["connect_failures"] >= 1

    def test_overflow_drops_oldest_without_spill_path(self):
        sink = TcpSink("127.0.0.1", 1, buffer_limit=3,
                       connect_timeout=0.05, backoff=_fast_backoff())
        for seq in range(10):
            sink.emit(_event(seq))
        stats = sink.stats()
        assert stats["dropped"] == 7
        assert stats["buffered"] == 3
        # The *newest* events survive in the buffer.
        kept = [decode_line(line)["seq"] for line in sink._buffer]
        assert kept == [7, 8, 9]
        sink.close()
        assert sink.stats()["dropped"] == 10  # close spills or drops the rest

    def test_listener_kill_restart_loss_is_bounded(self, tmp_path):
        """Acceptance: restart the listener mid-stream; account for every
        event as received, spilled, or within the sent-but-unread bound."""
        spill = tmp_path / "spill.ndjson"
        buffer_limit = 8
        listener = TelemetryListener()
        listener.start()
        port = listener.port
        sink = TcpSink("127.0.0.1", port, buffer_limit=buffer_limit,
                       spill_path=str(spill), connect_timeout=0.1,
                       backoff=_fast_backoff())
        emitted = 0
        for seq in range(10):
            sink.emit(_event(seq))
            emitted += 1
        deadline = time.monotonic() + 5.0
        while (len(listener.snapshot()) < 10
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert len(listener.snapshot()) == 10
        listener.stop()  # kill the listener mid-campaign (join is synchronous)
        for seq in range(10, 40):
            sink.emit(_event(seq))
            emitted += 1
        listener.port = port  # restart on the same address
        listener.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            sink.emit(_event(emitted))
            emitted += 1
            sink.flush()
            if sink.stats()["reconnects"] >= 2:
                break
            time.sleep(0.01)
        sink.close()
        time.sleep(0.3)  # let the listener ingest the tail
        received = listener.snapshot()
        listener.stop()

        stats = sink.stats()
        assert stats["reconnects"] >= 2, stats
        assert stats["dropped"] == 0  # spill path absorbs all overflow
        assert stats["buffered"] == 0  # close() leaves nothing in limbo
        # Every emission is accounted as sent or spilled...
        assert stats["sent"] + stats["spilled"] == emitted
        spilled_lines = (spill.read_bytes().splitlines()
                        if spill.exists() else [])
        assert len(spilled_lines) == stats["spilled"]
        # ...and of the sent ones, at most a socket-buffer window of
        # sent-but-unread events died with the first listener.  That is
        # the documented loss bound; everything else must be in hand.
        lost_in_flight = stats["sent"] - len(received)
        assert 0 <= lost_in_flight <= buffer_limit, stats
        received_seqs = {event["seq"] for event in received}
        spilled_seqs = {decode_line(line)["seq"] for line in spilled_lines}
        unaccounted = set(range(emitted)) - received_seqs - spilled_seqs
        assert len(unaccounted) == lost_in_flight

    def test_connect_fault_counts_failures(self):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_SINK_CONNECT, action="oserror",
                      times=1),
        )).injector())
        with TelemetryListener() as listener:
            sink = TcpSink("127.0.0.1", listener.port,
                           backoff=_fast_backoff())
            sink.emit(_event(0))  # first connect attempt is fault-dropped
            assert sink.stats()["connect_failures"] == 1
            time.sleep(0.01)  # clear the reconnect gate
            sink.emit(_event(1))
            sink.flush()
            stats = sink.stats()
            sink.close()
        assert stats["reconnects"] == 1
        assert stats["sent"] == 2

    def test_write_fault_disconnects_then_recovers(self):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_SINK_WRITE, action="oserror",
                      after=1, times=1, match=(("sink", "tcp"),)),
        )).injector())
        with TelemetryListener() as listener:
            sink = TcpSink("127.0.0.1", listener.port,
                           backoff=_fast_backoff())
            sink.emit(_event(0))  # clean send
            sink.emit(_event(1))  # write fault: disconnect, stays buffered
            assert sink.stats()["disconnects"] == 1
            assert sink.stats()["buffered"] == 1
            time.sleep(0.01)
            sink.emit(_event(2))  # reconnects and drains the backlog
            sink.close()
            deadline = time.monotonic() + 5.0
            while (len(listener.snapshot()) < 3
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            received = listener.snapshot()
        assert [event["seq"] for event in received] == [0, 1, 2]
        assert sink.stats()["sent"] == 3

    def test_backoff_resets_after_successful_reconnect(self):
        sink = TcpSink("127.0.0.1", 1, connect_timeout=0.05,
                       backoff=faults.Backoff(base=0.01, cap=10.0,
                                              jitter=0.0))
        for _ in range(6):
            sink._connect()
        assert sink.backoff.attempt == 6  # schedule escalated while down
        with TelemetryListener() as listener:
            sink.port = listener.port
            assert sink._connect()
        assert sink.backoff.attempt == 0  # success decays to base
        sink.close()

    def test_buffer_limit_validation(self):
        with pytest.raises(ValueError, match="buffer_limit"):
            TcpSink("127.0.0.1", 1, buffer_limit=0)

    def test_spilled_lines_are_valid_ndjson(self, tmp_path):
        spill = tmp_path / "spill.ndjson"
        sink = TcpSink("127.0.0.1", 1, buffer_limit=1,
                       spill_path=str(spill), connect_timeout=0.05,
                       backoff=_fast_backoff())
        sink.emit(_event(0, coverage=7, bugs=["V1"]))
        sink.emit(_event(1))
        sink.close()
        events = [json.loads(line) for line in spill.read_text().splitlines()]
        assert events[0]["coverage"] == 7
        assert [event["seq"] for event in events] == [0, 1]
