"""Shared fixtures for the test suite.

The fixtures keep campaign sizes small so the full suite runs in a couple of
minutes; anything statistically sensitive (e.g. MABFuzz-vs-TheHuzz
comparisons) lives in the benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.generator import GeneratorConfig, SeedGenerator
from repro.isa.instruction import Instruction
from repro.isa.program import TestProgram
from repro.rtl.cva6 import CVA6Model
from repro.rtl.harness import DutConfig
from repro.rtl.rocket import RocketModel
from repro.sim.golden import GoldenModel


@pytest.fixture
def rng():
    """A deterministic NumPy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def seed_generator(rng):
    """A seed generator with the default configuration."""
    return SeedGenerator(GeneratorConfig(), rng)


@pytest.fixture
def golden_model():
    return GoldenModel()


@pytest.fixture
def clean_cva6():
    """A CVA6 model with no injected bugs (must match the golden model)."""
    return CVA6Model(bugs=[])


@pytest.fixture
def buggy_cva6():
    """A CVA6 model with the paper's default V1-V6 bug set."""
    return CVA6Model()


@pytest.fixture
def buggy_rocket():
    """A Rocket model with the paper's V7 bug."""
    return RocketModel()


@pytest.fixture
def small_dut_config():
    """A deliberately tiny DUT configuration for fast structural tests."""
    return DutConfig(name="tiny", icache_sets=4, dcache_sets=4, cache_ways=1,
                     bpred_entries=4, hazard_window=2)


def make_program(instructions, base=0x4000_0000) -> TestProgram:
    """Helper used across tests to build a program from instruction list."""
    return TestProgram(instructions=tuple(instructions), base_address=base)


@pytest.fixture
def straightline_program():
    """A tiny deterministic program with no memory access or branches."""
    return make_program([
        Instruction("addi", rd=5, rs1=0, imm=7),
        Instruction("addi", rd=6, rs1=5, imm=3),
        Instruction("add", rd=7, rs1=5, rs2=6),
        Instruction("sub", rd=28, rs1=7, rs2=5),
        Instruction("ecall"),
    ])


@pytest.fixture
def memory_program():
    """A program exercising valid loads and stores via the data region."""
    return make_program([
        Instruction("lui", rd=10, imm=0x40004),
        Instruction("addi", rd=5, rs1=0, imm=123),
        Instruction("sd", rs1=10, rs2=5, imm=0),
        Instruction("ld", rd=6, rs1=10, imm=0),
        Instruction("lw", rd=7, rs1=10, imm=0),
        Instruction("ecall"),
    ])
