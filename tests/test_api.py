"""Tests for the top-level convenience API."""

import pytest

import repro
from repro.api import available_fuzzers, available_processors, make_fuzzer, make_processor
from repro.core.mabfuzz import MABFuzz
from repro.core.mutation_bandit import MutationBanditFuzzer
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.random_fuzzer import RandomFuzzer
from repro.fuzzing.thehuzz import TheHuzzFuzzer


class TestDiscovery:
    def test_version(self):
        assert repro.__version__

    def test_processors(self):
        assert set(available_processors()) == {"cva6", "rocket", "boom"}

    def test_fuzzers_include_paper_algorithms(self):
        fuzzers = available_fuzzers()
        assert "thehuzz" in fuzzers
        for algo in ("egreedy", "ucb", "exp3"):
            assert f"mabfuzz:{algo}" in fuzzers


class TestMakeFuzzer:
    def test_each_kind(self):
        dut = make_processor("cva6", bugs=[])
        assert isinstance(make_fuzzer("thehuzz", dut), TheHuzzFuzzer)
        assert isinstance(make_fuzzer("random", dut), RandomFuzzer)
        assert isinstance(make_fuzzer("mabfuzz:ucb", dut), MABFuzz)
        assert isinstance(make_fuzzer("mutation-bandit:exp3", dut), MutationBanditFuzzer)

    def test_unknown_raises(self):
        dut = make_processor("cva6", bugs=[])
        with pytest.raises(KeyError):
            make_fuzzer("afl", dut)

    def test_make_processor_bug_override(self):
        assert [b.bug_id for b in make_processor("rocket", bugs=[]).bugs] == []


class TestQuickCampaign:
    def test_runs_end_to_end(self):
        result = repro.quick_campaign(
            processor="rocket", fuzzer="mabfuzz:exp3", num_tests=10, seed=0,
            bugs=[], fuzzer_config=FuzzerConfig(num_seeds=3, mutants_per_test=2))
        assert result.num_tests == 10
        assert result.dut_name == "rocket"
        assert result.fuzzer_name == "mabfuzz:exp3"
        assert result.coverage_count > 0

    def test_reproducible(self):
        kwargs = dict(processor="cva6", fuzzer="thehuzz", num_tests=8, seed=5,
                      bugs=[], fuzzer_config=FuzzerConfig(num_seeds=2))
        assert repro.quick_campaign(**kwargs).coverage_count == \
            repro.quick_campaign(**kwargs).coverage_count
