"""Cross-backend bit-identity of the trap/CSR scenario workload.

The trap subsystem (mixed user/trap arms + the ``"csr"`` coverage model)
is the first workload whose coverage signal is richer than hit sets, so
this module re-proves the execution subsystem's hard guarantee for it:
serial, process-pool and distributed backends produce bit-identical
``FuzzCampaignResult`` payloads, including through a checkpoint journal
interrupted mid-campaign.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec import (
    CampaignEngine,
    DistributedBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.exec.backends import ExecutionBackend
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

TRAP_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2, scenario="mixed")


def _grid():
    """Mixed user/trap MABFuzz campaigns on all three DUTs, CSR coverage."""
    return [
        CampaignSpec(processor=processor, fuzzer="mabfuzz:ucb", num_tests=6,
                     trials=2, seed=31, fuzzer_config=TRAP_CONFIG,
                     coverage_model="csr")
        for processor in ("cva6", "rocket", "boom")
    ]


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


@pytest.fixture(scope="module")
def serial_reference():
    return CampaignEngine(backend=SerialBackend()).run_grid(_grid())


def _assert_trap_signal(trialsets):
    """The new coverage family must actually appear in the results."""
    results = [r for ts in trialsets for r in ts.completed_results()]
    assert results
    assert all(r.metadata["coverage_model"] == "csr" for r in results)
    assert all(r.metadata["scenario"] == "mixed" for r in results)
    assert any(r.metadata["csr_transition_points"] > 0 for r in results)
    assert any(r.metadata["trap_points"] > 0 for r in results)


class TestCrossBackendIdentity:
    def test_serial_results_carry_the_trap_signal(self, serial_reference):
        _assert_trap_signal(serial_reference)

    def test_process_pool_matches_serial_bit_for_bit(self, serial_reference):
        pool = CampaignEngine(
            backend=ProcessPoolBackend(workers=2)).run_grid(_grid())
        assert _canonical(pool) == _canonical(serial_reference)

    def test_distributed_matches_serial_bit_for_bit(self, serial_reference,
                                                    tmp_path):
        queue_dir = tmp_path / "spool"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker", "--queue",
             str(queue_dir), "--poll-interval", "0.05"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            backend = DistributedBackend(str(queue_dir), poll_interval=0.05,
                                         max_wait_seconds=120.0,
                                         stop_workers_on_exit=True)
            distributed = CampaignEngine(backend=backend).run_grid(_grid())
        finally:
            try:
                worker.wait(timeout=60)
            except subprocess.TimeoutExpired:
                worker.kill()
                raise
        assert _canonical(distributed) == _canonical(serial_reference)
        _assert_trap_signal(distributed)


class _InterruptedBackend(SerialBackend):
    """Serial backend that dies after streaming ``limit`` trial results."""

    def __init__(self, limit):
        super().__init__()
        self.limit = limit

    def run(self, tasks):
        yielded = 0
        for task, payload in super().run(tasks):
            if yielded >= self.limit:
                raise KeyboardInterrupt("campaign killed mid-grid")
            yielded += 1
            yield task, payload


class TestCheckpointResumeMidCampaign:
    def test_resume_after_mid_grid_kill_is_bit_identical(self, serial_reference,
                                                         tmp_path):
        journal = tmp_path / "trap-grid.jsonl"
        interrupted = CampaignEngine(backend=_InterruptedBackend(limit=2),
                                     checkpoint_path=str(journal))
        with pytest.raises(KeyboardInterrupt):
            interrupted.run_grid(_grid())

        monitor = ProgressMonitor()
        resumed = CampaignEngine(backend=SerialBackend(),
                                 checkpoint_path=str(journal),
                                 monitor=monitor).run_grid(_grid())
        assert monitor.restored_trials == 2   # the journaled prefix
        assert _canonical(resumed) == _canonical(serial_reference)
        _assert_trap_signal(resumed)

    def test_trap_spec_fingerprint_distinguishes_coverage_model(self):
        base = CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb",
                            num_tests=6, trials=2, seed=31,
                            fuzzer_config=TRAP_CONFIG)
        csr = _grid()[0]
        assert base.fingerprint() != csr.fingerprint()

    def test_default_fields_do_not_change_legacy_fingerprints(self):
        """Old-wire-format payloads must resume under the new code."""
        spec = CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb",
                            num_tests=6, trials=2, seed=31)
        payload = spec.to_dict()
        # Strip the fields the old wire format did not have.
        del payload["coverage_model"]
        del payload["fuzzer_config"]  # was None anyway
        legacy = CampaignSpec.from_dict({**payload, "fuzzer_config": None})
        assert legacy.fingerprint() == spec.fingerprint()


class TestWireRoundTrip:
    def test_trap_spec_round_trips_through_the_wire_format(self):
        spec = _grid()[0]
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()
        assert restored.coverage_model == "csr"
        assert restored.fuzzer_config.scenario == "mixed"

    def test_backend_knobs_cannot_change_trap_results(self, serial_reference):
        for backend in (SerialBackend(batch_size=1),
                        SerialBackend(batch_size=None)):
            assert isinstance(backend, ExecutionBackend)
            shaped = CampaignEngine(backend=backend).run_grid(_grid())
            assert _canonical(shaped) == _canonical(serial_reference)
