"""Corpus mode through the execution subsystem: determinism, the
coverage-at-equal-budget property, cross-worker aggregation and resume.

The corpus relaxes the serial==pool==distributed bit-identity contract
(only for corpus-ON runs -- corpus-off stays fully covered by
``test_backends.py``/``test_distributed.py``), so the invariants enforced
here are the ones ``docs/corpus.md`` promises instead:

* corpus-on **serial** runs are reproducible end to end;
* the engine's corpus state equals a hand-threaded mirror of the same
  trials (no state leaks, no double merges);
* at an equal trial budget, a corpus-on MABFuzz grid reaches strictly
  more union coverage than corpus-off (the point of the subsystem);
* a 2-worker distributed corpus run converges: every worker's parting
  snapshot is identical to the dispatcher's global map; and
* the checkpoint journal restores the feedback loop on resume.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import make_fuzzer, make_processor
from repro.exec import CampaignEngine, DistributedBackend, SerialBackend, SpoolQueue
from repro.exec.checkpoint import CheckpointJournal
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.corpus import CorpusManager
from repro.harness.campaign import CampaignSpec, run_campaign, trial_seed
from repro.isa.program import program_id_scope

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
CORPUS_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2, corpus=True)
OFF_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


def _spec(corpus=True, trials=2, num_tests=8, seed=17, fuzzer="mabfuzz:ucb"):
    return CampaignSpec(processor="rocket", fuzzer=fuzzer, num_tests=num_tests,
                        trials=trials, seed=seed, bugs=[],
                        fuzzer_config=CORPUS_CONFIG if corpus else OFF_CONFIG)


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


def _threaded_union(spec):
    """Hand-threaded mirror of a serial corpus grid: run each trial with
    the accumulated state, fold its payload back, return the union of the
    trials' covered point sets (plus the final corpus state)."""
    state = CorpusManager()
    union = set()
    for trial in range(spec.trials):
        seed = trial_seed(spec, trial)
        with program_id_scope():
            dut = make_processor(spec.processor, bugs=spec.bugs,
                                 coverage_model=spec.coverage_model)
            fuzzer = make_fuzzer(spec.fuzzer, dut,
                                 fuzzer_config=spec.fuzzer_config,
                                 mab_config=spec.mab_config, rng=seed)
            if fuzzer.corpus is not None:
                fuzzer.corpus.merge_payload(state.to_payload())
                fuzzer.on_corpus_state()
            fuzzer.run(spec.num_tests)
            union |= set(fuzzer.session.coverage_db.covered)
            if fuzzer.corpus is not None:
                state.merge_payload(fuzzer.corpus.to_payload())
    return union, state


class TestSerialDeterminism:
    def test_corpus_on_serial_runs_are_reproducible(self):
        spec = _spec()
        first = CampaignEngine(backend=SerialBackend())
        second = CampaignEngine(backend=SerialBackend())
        results_a = first.run_grid([spec])
        results_b = second.run_grid([spec])
        assert _canonical(results_a) == _canonical(results_b)
        assert (first.corpus_state.coverage_points()
                == second.corpus_state.coverage_points())
        assert set(first.corpus_state.entries) == set(second.corpus_state.entries)

    def test_engine_state_matches_hand_threaded_mirror(self):
        spec = _spec()
        engine = CampaignEngine(backend=SerialBackend())
        engine.run_grid([spec])
        union, state = _threaded_union(spec)
        assert engine.corpus_state.coverage_points() == frozenset(union)
        assert engine.corpus_state.coverage_points() == state.coverage_points()

    def test_corpus_counters_reach_result_metadata(self):
        spec = _spec(trials=1)
        (trialset,) = CampaignEngine(backend=SerialBackend()).run_grid([spec])
        metadata = trialset.results[0].metadata
        assert metadata["corpus_admitted"] > 0
        assert metadata["corpus_global_points"] > 0
        assert "corpus_seeded" in metadata and "corpus_fresh" in metadata

    def test_corpus_off_results_carry_no_corpus_metadata(self):
        spec = _spec(corpus=False, trials=1)
        engine = CampaignEngine(backend=SerialBackend())
        (trialset,) = engine.run_grid([spec])
        assert "corpus_admitted" not in trialset.results[0].metadata
        assert engine.corpus_state is None


class TestCoverageAtEqualBudget:
    def test_corpus_on_beats_corpus_off_union_coverage(self):
        # The acceptance property of the subsystem (docs/corpus.md): at a
        # fixed trial budget, a corpus-on MABFuzz grid reaches strictly
        # more distinct coverage points than the same corpus-off grid.
        # Seeded: the budget (3 trials x 80 tests) is past the break-even
        # point where cross-trial feedback pays for the lost diversity.
        budget = dict(trials=3, num_tests=80, seed=7)
        union_off, _ = _threaded_union(_spec(corpus=False, **budget))
        union_on, state = _threaded_union(_spec(corpus=True, **budget))
        assert len(union_on) > len(union_off)
        # The corpus map is exactly the union of the trials' coverage.
        assert state.coverage_points() == frozenset(union_on)


class TestResume:
    def test_journal_records_and_full_restore(self, tmp_path):
        journal_path = str(tmp_path / "grid.jsonl")
        spec = _spec()
        engine = CampaignEngine(backend=SerialBackend(),
                                checkpoint_path=journal_path,
                                reuse_results=False)
        original = engine.run_grid([spec])

        journal = CheckpointJournal(journal_path)
        journal.load()
        assert journal.last_corpus_deltas, "corpus deltas must be journaled"

        resumed_engine = CampaignEngine(backend=SerialBackend(),
                                        checkpoint_path=journal_path,
                                        reuse_results=False)
        resumed = resumed_engine.run_grid([spec])
        assert _canonical(resumed) == _canonical(original)
        assert resumed_engine.monitor.restored_trials == spec.trials
        assert (resumed_engine.corpus_state.coverage_points()
                == engine.corpus_state.coverage_points())

    def test_kill_mid_grid_resume_restores_feedback_loop(self, tmp_path):
        # Two specs, batch_size=2 -> one batch per spec on the serial
        # backend (the specs share a cache group, so an unbounded batch
        # would fuse them).  Truncating the journal after batch 0 (its
        # corpus delta + its trial records) simulates a kill between
        # batches; the resumed engine must replay the delta and re-run
        # batch 1 with exactly the state the original run gave it --
        # bit-identical results.
        journal_path = str(tmp_path / "grid.jsonl")
        specs = [_spec(seed=17), _spec(seed=23)]
        engine = CampaignEngine(backend=SerialBackend(batch_size=2),
                                checkpoint_path=journal_path,
                                reuse_results=False)
        original = engine.run_grid(specs)

        second_fp = specs[1].fingerprint()
        kept = []
        for line in Path(journal_path).read_text().splitlines():
            record = json.loads(line)
            if record.get("kind") == "trial" and record["spec"] == second_fp:
                break
            kept.append(line)
        # Drop trailing corpus deltas (they belong to the batch whose
        # trials were lost in the "kill").
        while kept and json.loads(kept[-1]).get("kind") == "corpus":
            kept.pop()
        Path(journal_path).write_text("\n".join(kept) + "\n")

        resumed_engine = CampaignEngine(backend=SerialBackend(batch_size=2),
                                        checkpoint_path=journal_path,
                                        reuse_results=False)
        resumed = resumed_engine.run_grid(specs)
        assert _canonical(resumed) == _canonical(original)
        assert resumed_engine.monitor.restored_trials == specs[0].trials
        assert (resumed_engine.corpus_state.coverage_points()
                == engine.corpus_state.coverage_points())


class TestDistributedConvergence:
    def test_two_workers_converge_to_dispatcher_map(self, tmp_path):
        queue_dir = tmp_path / "spool"
        spec = _spec(trials=4, num_tests=6)
        workers = [_start_worker(queue_dir), _start_worker(queue_dir)]
        try:
            backend = DistributedBackend(str(queue_dir), batch_size=1,
                                         poll_interval=0.05,
                                         max_wait_seconds=120.0,
                                         stop_workers_on_exit=True)
            engine = CampaignEngine(backend=backend)
            (trialset,) = engine.run_grid([spec])
        finally:
            for worker in workers:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    raise
        assert all(result is not None for result in trialset.results)

        dispatcher_points = engine.corpus_state.coverage_points()
        assert dispatcher_points

        queue = SpoolQueue(str(queue_dir))
        snapshots = queue.coverage_snapshots()
        assert snapshots, "workers that served corpus batches must snapshot"
        for worker_id, payload in snapshots.items():
            worker_points = CorpusManager.from_payload(payload).coverage_points()
            assert worker_points == dispatcher_points, (
                f"worker {worker_id} diverged from the dispatcher's map")
        # The final broadcast carries the same map.
        broadcast = queue.read_coverage_global()
        assert broadcast is not None
        broadcast_points = CorpusManager.from_payload(
            broadcast["state"]).coverage_points()
        assert broadcast_points == dispatcher_points


def _start_worker(queue_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--queue",
         str(queue_dir), "--poll-interval", "0.05"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
