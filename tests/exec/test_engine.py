"""Tests for the campaign execution engine."""

from repro.core.monitor import ProgressMonitor
from repro.exec.engine import CampaignEngine, grid_summary, run_grid
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


def _spec(processor="rocket", fuzzer="thehuzz", trials=2, seed=4):
    return CampaignSpec(processor=processor, fuzzer=fuzzer, num_tests=8,
                        trials=trials, seed=seed, bugs=[],
                        fuzzer_config=SMALL_CONFIG)


class TestCampaignEngine:
    def test_empty_grid(self):
        assert CampaignEngine().run_grid([]) == []

    def test_results_keep_grid_order(self):
        specs = [_spec(processor="rocket"), _spec(processor="boom")]
        trialsets = CampaignEngine().run_grid(specs)
        assert [ts.spec.processor for ts in trialsets] == ["rocket", "boom"]
        for spec, trialset in zip(specs, trialsets):
            assert trialset.is_complete
            assert trialset.num_trials == spec.trials
            for trial, result in enumerate(trialset.results):
                assert result.metadata["trial"] == trial

    def test_run_trials_wrapper(self):
        trialset = CampaignEngine().run_trials(_spec(trials=1))
        assert trialset.num_trials == 1

    def test_monitor_sees_all_trials(self):
        lines = []
        monitor = ProgressMonitor(sink=lines.append)
        engine = CampaignEngine(monitor=monitor)
        engine.run_grid([_spec(trials=2)])
        assert monitor.completed_trials == monitor.total_trials == 2
        assert len(lines) == 3  # start + one per trial
        assert "trials 2/2" in lines[-1]


class TestGridSummary:
    def test_summary_counts(self):
        trialsets = run_grid([_spec(trials=2)])
        summary = grid_summary(trialsets)
        assert summary["specs"] == 1
        assert summary["trials_completed"] == 2
        assert summary["trials_expected"] == 2
        assert summary["tests_executed"] == 16
        assert summary["total_elapsed_seconds"] > 0

    def test_summary_tolerates_partial_sets(self):
        trialsets = run_grid([_spec(trials=2)])
        trialsets[0].results[1] = None  # simulate a resume hole
        summary = grid_summary(trialsets)
        assert summary["trials_completed"] == 1
        assert summary["trials_expected"] == 2
