"""Tests for the campaign execution engine."""

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec.backends import SerialBackend
from repro.exec.engine import CampaignEngine, grid_summary, run_grid
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

from tests.exec.helpers import CountingBackend

SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


def _spec(processor="rocket", fuzzer="thehuzz", trials=2, seed=4):
    return CampaignSpec(processor=processor, fuzzer=fuzzer, num_tests=8,
                        trials=trials, seed=seed, bugs=[],
                        fuzzer_config=SMALL_CONFIG)


class TestCampaignEngine:
    def test_empty_grid(self):
        assert CampaignEngine().run_grid([]) == []

    def test_results_keep_grid_order(self):
        specs = [_spec(processor="rocket"), _spec(processor="boom")]
        trialsets = CampaignEngine().run_grid(specs)
        assert [ts.spec.processor for ts in trialsets] == ["rocket", "boom"]
        for spec, trialset in zip(specs, trialsets):
            assert trialset.is_complete
            assert trialset.num_trials == spec.trials
            for trial, result in enumerate(trialset.results):
                assert result.metadata["trial"] == trial

    def test_run_trials_wrapper(self):
        trialset = CampaignEngine().run_trials(_spec(trials=1))
        assert trialset.num_trials == 1

    def test_monitor_sees_all_trials(self):
        lines = []
        monitor = ProgressMonitor(sink=lines.append)
        engine = CampaignEngine(monitor=monitor)
        engine.run_grid([_spec(trials=2)])
        assert monitor.completed_trials == monitor.total_trials == 2
        assert len(lines) == 3  # start + one per trial
        assert "trials 2/2" in lines[-1]


class TestResultReuse:
    def test_overlapping_grids_run_shared_cells_once(self):
        # `mabfuzz report` runs the Table I grid and then the coverage
        # grid through one engine; shared (spec, trial) cells replay from
        # memory because trials are deterministic.
        backend = CountingBackend()
        engine = CampaignEngine(backend=backend)
        shared, extra = _spec(processor="rocket"), _spec(processor="boom")
        first = engine.run_grid([shared])
        assert len(backend.executed) == 2
        second = engine.run_grid([shared, extra])
        assert sorted(backend.executed) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert ([r.canonical_dict() for r in second[0].results]
                == [r.canonical_dict() for r in first[0].results])

    def test_reuse_can_be_disabled(self):
        backend = CountingBackend()
        engine = CampaignEngine(backend=backend, reuse_results=False)
        spec = _spec()
        engine.run_grid([spec])
        engine.run_grid([spec])
        assert len(backend.executed) == 4  # everything re-ran

    def test_reused_results_are_journaled(self, tmp_path):
        # A grid resumed from engine memory must still leave a complete
        # journal behind for the *next* process.
        engine = CampaignEngine(backend=CountingBackend())
        spec = _spec()
        engine.run_grid([spec])
        path = str(tmp_path / "grid.jsonl")
        engine.checkpoint_path = path
        engine.run_grid([spec])
        fresh_backend = CountingBackend()
        CampaignEngine(backend=fresh_backend,
                       checkpoint_path=path).run_grid([spec])
        assert fresh_backend.executed == []


class TestCacheEntriesKnob:
    def test_knob_is_scoped_to_the_run(self):
        # The bound applies while this engine's grids execute, but a
        # backend shared with another engine is restored afterwards.
        planned = []
        backend = SerialBackend()
        original_run = backend.run

        def spying_run(tasks):
            planned.append(backend.cache_entries)
            yield from original_run(tasks)

        backend.run = spying_run
        engine = CampaignEngine(backend=backend, cache_entries=123)
        engine.run_grid([_spec(trials=1)])
        assert planned == [123]
        assert backend.cache_entries is None  # restored for other engines

    def test_invalid_knob_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(cache_entries=0)


class TestGridSummary:
    def test_summary_counts(self):
        trialsets = run_grid([_spec(trials=2)])
        summary = grid_summary(trialsets)
        assert summary["specs"] == 1
        assert summary["trials_completed"] == 2
        assert summary["trials_expected"] == 2
        assert summary["tests_executed"] == 16
        assert summary["total_elapsed_seconds"] > 0

    def test_summary_tolerates_partial_sets(self):
        trialsets = run_grid([_spec(trials=2)])
        trialsets[0].results[1] = None  # simulate a resume hole
        summary = grid_summary(trialsets)
        assert summary["trials_completed"] == 1
        assert summary["trials_expected"] == 2
