"""Tests for trial batching: planning, execution and the wire format."""

import pytest

from repro.exec.batching import (
    TrialBatch,
    TrialTask,
    batch_from_wire,
    batch_key,
    batch_to_wire,
    execute_batch,
    plan_batches,
)
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec, run_campaign

SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


# A module-unique base seed: the process-level caches are shared across the
# whole pytest run, and the delta assertions below need cold programs.
def _spec(processor="rocket", fuzzer="thehuzz", bugs=(), seed=421):
    return CampaignSpec(processor=processor, fuzzer=fuzzer, num_tests=6,
                        trials=2, seed=seed, bugs=list(bugs),
                        fuzzer_config=SMALL_CONFIG)


def _tasks():
    """4 tasks over two DUT configurations (rocket clean, cva6 with V5)."""
    specs = [_spec(), _spec(processor="cva6", fuzzer="mabfuzz:ucb",
                            bugs=("V5",))]
    return [TrialTask(spec_index, trial, spec)
            for spec_index, spec in enumerate(specs)
            for trial in range(spec.trials)]


class TestPlanBatches:
    def test_groups_by_dut_configuration(self):
        batches = plan_batches(_tasks())
        assert len(batches) == 2
        assert [len(batch.tasks) for batch in batches] == [2, 2]
        for batch in batches:
            assert len({batch_key(task) for task in batch.tasks}) == 1

    def test_chunking_respects_batch_size(self):
        batches = plan_batches(_tasks(), batch_size=1)
        assert len(batches) == 4
        assert all(len(batch.tasks) == 1 for batch in batches)

    def test_unbounded_batches(self):
        spec = _spec()
        tasks = [TrialTask(0, trial, spec) for trial in range(9)]
        batches = plan_batches(tasks, batch_size=None)
        assert len(batches) == 1
        assert len(batches[0].tasks) == 9

    def test_plan_is_deterministic_and_order_preserving(self):
        tasks = _tasks()
        first = plan_batches(tasks)
        second = plan_batches(tasks)
        assert first == second
        flattened = [task for batch in first for task in batch.tasks]
        # Within a group, submission order is preserved.
        for batch in first:
            indices = [task.trial_index for task in batch.tasks]
            assert indices == sorted(indices)
        assert sorted(flattened, key=lambda t: (t.spec_index, t.trial_index)) \
            == sorted(tasks, key=lambda t: (t.spec_index, t.trial_index))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            plan_batches(_tasks(), batch_size=0)

    def test_cache_entries_carried_through(self):
        batches = plan_batches(_tasks(), cache_entries=128)
        assert all(batch.cache_entries == 128 for batch in batches)

    def test_differing_bug_sets_do_not_share_a_batch(self):
        clean, bugged = _spec(), _spec(bugs=("V1",))
        tasks = [TrialTask(0, 0, clean), TrialTask(1, 0, bugged)]
        assert len(plan_batches(tasks)) == 2


class TestExecuteBatch:
    def test_payload_matches_individual_runs(self):
        tasks = _tasks()[:2]
        payload = execute_batch(TrialBatch(index=0, tasks=tuple(tasks)))
        assert len(payload["results"]) == 2
        for task, item in zip(tasks, payload["results"]):
            assert item["spec_index"] == task.spec_index
            assert item["trial_index"] == task.trial_index
            direct = run_campaign(task.spec, task.trial_index)
            expected = direct.to_dict()
            del expected["elapsed_seconds"]
            got = dict(item["result"])
            del got["elapsed_seconds"]
            assert got == expected

    def test_cache_stats_are_deltas(self):
        # A seed of its own: the process caches persist across tests, and
        # the first batch here must run cold.
        tasks = (TrialTask(0, 0, _spec(seed=422)),)
        first = execute_batch(TrialBatch(index=0, tasks=tasks))
        second = execute_batch(TrialBatch(index=1, tasks=tasks))
        stats = second["cache_stats"]
        assert set(stats) >= {"dut_cache_hits", "dut_cache_misses",
                              "shared_golden_hits", "shared_golden_misses"}
        # The second, identical batch is served from the warm process
        # caches: every DUT run hits, and no more misses accrue.
        assert stats["dut_cache_misses"] == 0
        assert stats["dut_cache_hits"] > 0
        assert first["cache_stats"]["dut_cache_misses"] > 0


class TestWireFormat:
    def test_round_trip(self):
        batch = plan_batches(_tasks(), cache_entries=64)[0]
        rebuilt = batch_from_wire(batch_to_wire(batch))
        assert rebuilt.index == batch.index
        assert rebuilt.cache_entries == batch.cache_entries
        assert len(rebuilt.tasks) == len(batch.tasks)
        for original, restored in zip(batch.tasks, rebuilt.tasks):
            assert restored.spec_index == original.spec_index
            assert restored.trial_index == original.trial_index
            assert restored.spec == original.spec
            assert restored.spec.fingerprint() == original.spec.fingerprint()

    def test_wire_payload_is_json_safe(self):
        import json

        batch = plan_batches(_tasks())[0]
        encoded = json.dumps(batch_to_wire(batch), sort_keys=True)
        assert batch_from_wire(json.loads(encoded)).tasks == batch.tasks

    def test_rejects_non_batch_payload(self):
        with pytest.raises(ValueError, match="kind"):
            batch_from_wire({"kind": "trial"})
