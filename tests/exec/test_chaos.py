"""Chaos tests: scripted fault schedules against the full exec stack.

Every scenario here follows one template -- run a grid under a seeded
:class:`~repro.exec.faults.FaultPlan` (worker kills, claim steals, torn
results, journal corruption), then assert the self-healing layer delivered
**bit-identical results with zero lost trials**, the contract
``docs/robustness.md`` documents.  Determinism of trials is what makes the
oracle this sharp: recovery by re-execution must reproduce exactly what an
unfaulted serial run produces.
"""

import json
import os
import random
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec import (
    CampaignEngine,
    DistributedBackend,
    SerialBackend,
    SpoolQueue,
    faults,
    run_worker,
)
from repro.exec.faults import FaultPlan, FaultRule
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


def _grid():
    return [
        CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                     trials=2, seed=23, bugs=[], fuzzer_config=SMALL_CONFIG),
        CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=6,
                     trials=2, seed=23, bugs=["V5"],
                     fuzzer_config=SMALL_CONFIG),
    ]


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


def _start_worker(queue_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.FAULT_PLAN_ENV, None)  # chaotic only where scripted
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--queue",
         str(queue_dir), "--poll-interval", "0.05", *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestChaosRecovery:
    def test_kill_torn_result_and_claim_steal_recover_bit_identically(
            self, tmp_path):
        """The flagship chaos run: one worker tears a result file
        mid-publish, has its next lease stolen mid-batch (and aborts it),
        then dies holding a claim -- a clean worker and the dispatcher's
        retry budget must deliver the exact serial grid with nothing
        lost."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)
        plan = FaultPlan(rules=(
            # First publish is cut short mid-write (corrupt result file).
            FaultRule(site=faults.SITE_QUEUE_PUBLISH, action="torn",
                      times=1),
            # Second claim looks ancient: a stale sweep steals it while
            # the chaotic worker is still executing; its next heartbeat
            # notices and the batch is aborted (lease-lost path).
            FaultRule(site=faults.SITE_QUEUE_CLAIM, action="backdate",
                      after=1, times=1),
            # Dawdle inside the stolen batch so the sweep is guaranteed
            # to land before the worker's heartbeat looks.
            FaultRule(site=faults.SITE_WORKER_TRIAL, action="delay",
                      arg=0.5, after=1, times=1),
            # Third batch pickup dies holding the claim, like SIGKILL.
            FaultRule(site=faults.SITE_WORKER_BATCH, action="kill",
                      after=2, times=1),
        ))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))

        queue_dir = tmp_path / "spool"
        backend = DistributedBackend(
            str(queue_dir), poll_interval=0.05, lease_timeout=1.0,
            max_attempts=3, batch_size=1, max_wait_seconds=120.0,
            stop_workers_on_exit=True)
        engine = CampaignEngine(backend=backend)
        outcome = {}

        def dispatch():
            outcome["trialsets"] = engine.run_grid(specs)

        dispatcher = threading.Thread(target=dispatch)
        dispatcher.start()
        # Phase 1: the chaotic worker serves the queue alone, so its fault
        # schedule is guaranteed to play out: torn publish, stolen lease
        # (batch aborted), then death on the third batch pickup.
        chaotic = _start_worker(queue_dir, "--fault-plan", str(plan_path),
                                "--worker-id", "chaotic")
        clean = None
        try:
            chaotic.wait(timeout=60)
            # Phase 2: a clean worker picks up the wreckage -- the
            # requeued claim, the retried torn batch, and the rest.
            clean = _start_worker(queue_dir, "--worker-id", "clean")
            dispatcher.join(timeout=120)
            assert not dispatcher.is_alive()
            clean.wait(timeout=60)
        except subprocess.TimeoutExpired:
            for worker in (chaotic, clean):
                if worker is not None:
                    worker.kill()
            raise
        distributed = outcome["trialsets"]

        # Zero lost trials, bit-identical to the unfaulted serial run.
        assert _canonical(distributed) == _canonical(serial)
        assert all(ts.is_complete for ts in distributed)
        assert backend.quarantined == []
        # The injected kill really killed (SIGKILL-equivalent status) and
        # the self-healing was exercised, not bypassed.
        assert chaotic.returncode == faults.KILL_EXIT_CODE
        assert clean.returncode == 0
        assert backend.robustness_stats["retried"] >= 1  # torn result
        assert backend.robustness_stats["requeued"] >= 1  # stolen + killed claims

    def test_lease_lost_mid_batch_aborts_and_drops_the_result(self, tmp_path):
        """A worker whose lease is stolen mid-batch must abort the rest of
        the batch and publish nothing -- the re-execution by the lease's
        new owner is the only result that lands -- and the grid still
        completes bit-identically to serial."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)
        faults.install(FaultPlan(rules=(
            # First claim looks ancient: the dispatcher's stale sweep
            # requeues it while the worker dawdles in its first trial.
            FaultRule(site=faults.SITE_QUEUE_CLAIM, action="backdate",
                      times=1),
            # The dawdle guarantees the sweep lands before the worker's
            # between-trials heartbeat notices the stolen claim.
            FaultRule(site=faults.SITE_WORKER_TRIAL, action="delay",
                      arg=0.5, times=1),
        )).injector())
        queue_dir = str(tmp_path / "spool")
        log_lines = []
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=queue_dir, worker_id="stolen",
                        poll_interval=0.05, log=log_lines.append))
        worker.start()
        try:
            backend = DistributedBackend(
                queue_dir, poll_interval=0.05, lease_timeout=1.0,
                max_attempts=5, batch_size=1, max_wait_seconds=120.0,
                stop_workers_on_exit=True)
            distributed = CampaignEngine(backend=backend).run_grid(specs)
        finally:
            worker.join(timeout=60)
        assert not worker.is_alive()
        assert _canonical(distributed) == _canonical(serial)
        assert all(ts.is_complete for ts in distributed)
        assert backend.quarantined == []
        assert backend.robustness_stats["requeued"] >= 1  # the stolen claim
        # The worker saw the loss, said so, and dropped its execution.
        assert any("lease lost" in line for line in log_lines)

    def test_heartbeat_keeps_long_batch_from_being_requeued(self, tmp_path):
        """A batch that legitimately outlives the lease must not be stolen
        (and hence never duplicated): the worker heartbeats between trials."""
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                            trials=6, seed=23, bugs=[],
                            fuzzer_config=SMALL_CONFIG)
        serial = CampaignEngine(backend=SerialBackend()).run_grid([spec])
        # Every trial dawdles: the whole batch takes several lease periods.
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_WORKER_TRIAL, action="delay",
                      arg=0.4, times=0),
        )).injector())
        queue_dir = str(tmp_path / "spool")
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=queue_dir, worker_id="slow",
                        poll_interval=0.05))
        worker.start()
        try:
            backend = DistributedBackend(
                queue_dir, poll_interval=0.05, lease_timeout=1.0,
                batch_size=None,  # all six trials in one long batch
                max_wait_seconds=120.0, stop_workers_on_exit=True)
            distributed = CampaignEngine(backend=backend).run_grid([spec])
        finally:
            worker.join(timeout=60)
        assert not worker.is_alive()
        assert _canonical(distributed) == _canonical(serial)
        # 6 trials x 0.4s dawdle >> 1s lease, yet nothing was requeued.
        assert backend.robustness_stats["requeued"] == 0
        assert backend.robustness_stats["deadlettered"] == 0

    def test_transient_publish_errors_are_retried_through(self, tmp_path):
        """A filesystem hiccup on publish must cost a short backoff, not a
        batch re-execution (or a dead worker)."""
        spec = _grid()[0]
        serial = CampaignEngine(backend=SerialBackend()).run_grid([spec])
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_QUEUE_PUBLISH, action="oserror",
                      times=2),  # two blips, under the retry bound
        )).injector())
        queue_dir = str(tmp_path / "spool")
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=queue_dir, worker_id="blippy",
                        poll_interval=0.05))
        worker.start()
        try:
            backend = DistributedBackend(
                queue_dir, poll_interval=0.05, max_wait_seconds=120.0,
                stop_workers_on_exit=True)
            distributed = CampaignEngine(backend=backend).run_grid([spec])
        finally:
            worker.join(timeout=60)
        assert _canonical(distributed) == _canonical(serial)

    def test_chaotic_journal_still_resumes_exactly(self, tmp_path):
        """Journal appends corrupted mid-grid: the salvage pass drops the
        damaged records on resume and re-runs exactly those trials."""
        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                            trials=4, seed=23, bugs=[],
                            fuzzer_config=SMALL_CONFIG)
        path = str(tmp_path / "grid.jsonl")
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_JOURNAL_APPEND, action="corrupt",
                      after=2, times=1, match=(("kind", "trial"),)),
        )).injector())
        reference = CampaignEngine(backend=SerialBackend(),
                                   checkpoint_path=path).run_grid([spec])[0]
        faults.uninstall()

        monitor_lines = []
        engine = CampaignEngine(
            backend=SerialBackend(), checkpoint_path=path,
            monitor=ProgressMonitor(sink=monitor_lines.append))
        resumed = engine.run_grid([spec])[0]
        assert ([r.canonical_dict() for r in resumed.results]
                == [r.canonical_dict() for r in reference.results])
        assert engine.last_run_report["journal_salvage"]["dropped"] == 1
        assert engine.last_run_report["journal_salvage"]["loaded"] == 3
        # The damage is surfaced, not hidden.
        assert any("journal-dropped 1" in line for line in monitor_lines)


class TestQueueConcurrencyProperty:
    def test_no_task_is_ever_lost_under_racing_workers(self, tmp_path):
        """Property: hammer one SpoolQueue with racing claim / requeue /
        complete / abandon threads under an aggressive lease -- afterwards
        every task has either a published result or a deadletter record,
        and the queue is empty.  Nothing vanishes."""
        queue = SpoolQueue(str(tmp_path / "spool")).ensure()
        task_ids = [f"t{index:03d}" for index in range(32)]
        for task_id in task_ids:
            queue.enqueue(task_id, {"id": task_id}, max_attempts=4)
        deadline = time.monotonic() + 60.0
        failures = []

        def hammer(worker_index):
            rng = random.Random(worker_index)
            try:
                while time.monotonic() < deadline:
                    if not queue.task_ids() and not queue.claimed_ids():
                        return
                    queue.requeue_stale(lease_timeout=0.05)
                    claim = queue.claim(f"w{worker_index}")
                    if claim is None:
                        time.sleep(0.002)
                        continue
                    roll = rng.random()
                    if roll < 0.3:
                        # Simulate a worker death: walk away holding the
                        # claim, backdated so rescue is immediate.
                        try:
                            os.utime(claim.path, (1, 1))
                        except OSError:
                            pass
                        continue
                    if roll < 0.4:
                        time.sleep(0.08)  # slow worker: lease expires
                    queue.complete(claim, {"done": claim.task_id,
                                           "attempts": claim.attempts})
            except Exception as exc:  # pragma: no cover - the failure path
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90)
        assert not failures, failures
        assert all(not thread.is_alive() for thread in threads)

        completed = set(queue.result_ids())
        quarantined = set(queue.deadletter_ids())
        # The property: every task is accounted for -- completed (exactly
        # one result file per id; duplicates collapsed by the atomic
        # rename) or dead-lettered after its budget.  Never lost.
        assert completed | quarantined == set(task_ids)
        assert queue.pending_count() == 0
        assert queue.claimed_count() == 0
        for task_id in quarantined:
            record = queue.read_deadletter(task_id)
            assert record is not None
            assert record["task_id"] == task_id
