"""Tests for the per-process DUT-run cache."""

import pytest

from repro.api import make_processor
from repro.exec.cache import DutRunCache, process_dut_cache
from repro.isa.generator import SeedGenerator


@pytest.fixture()
def programs():
    return SeedGenerator(rng=11).generate_many(3)


class TestDutRunCache:
    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            DutRunCache(max_entries=0)

    def test_hit_returns_identical_result(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        first = cache.get_or_run(dut, programs[0])
        second = cache.get_or_run(dut, programs[0])
        assert second is first  # shared, read-only
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_result_matches_direct_run(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        cached = cache.get_or_run(dut, programs[1])
        direct = dut.run(programs[1])
        assert cached.coverage == direct.coverage
        assert cached.execution.final_registers == direct.execution.final_registers
        assert cached.fired_bugs == direct.fired_bugs

    def test_bug_set_partitions_the_key(self, programs):
        cache = DutRunCache()
        clean = make_processor("cva6", bugs=[])
        bugged = make_processor("cva6", bugs=["V5"])
        cache.get_or_run(clean, programs[0])
        cache.get_or_run(bugged, programs[0])
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_different_processors_do_not_collide(self, programs):
        cache = DutRunCache()
        cache.get_or_run(make_processor("rocket", bugs=[]), programs[0])
        cache.get_or_run(make_processor("boom", bugs=[]), programs[0])
        assert cache.misses == 2 and cache.hits == 0

    def test_eviction_bound(self, programs):
        cache = DutRunCache(max_entries=2)
        dut = make_processor("rocket", bugs=[])
        for program in programs:
            cache.get_or_run(dut, program)
        assert len(cache) <= 2

    def test_stats_and_clear(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        cache.get_or_run(dut, programs[0])
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["entries"] == 1
        cache.clear()
        assert len(cache) == 0


def test_process_cache_is_a_singleton():
    assert process_dut_cache() is process_dut_cache()
    assert isinstance(process_dut_cache(), DutRunCache)
