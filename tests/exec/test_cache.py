"""Tests for the per-process DUT-run cache and the shared golden cache."""

import pytest

from repro.api import make_processor
from repro.exec.cache import (
    DutRunCache,
    configure_process_caches,
    process_cache_stats,
    process_dut_cache,
    process_golden_cache,
)
from repro.isa.generator import SeedGenerator
from repro.sim.golden import GoldenModel, GoldenTraceCache


@pytest.fixture()
def programs():
    return SeedGenerator(rng=11).generate_many(3)


class TestDutRunCache:
    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            DutRunCache(max_entries=0)

    def test_hit_returns_identical_result(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        first = cache.get_or_run(dut, programs[0])
        second = cache.get_or_run(dut, programs[0])
        assert second is first  # shared, read-only
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_result_matches_direct_run(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        cached = cache.get_or_run(dut, programs[1])
        direct = dut.run(programs[1])
        assert cached.coverage == direct.coverage
        assert cached.execution.final_registers == direct.execution.final_registers
        assert cached.fired_bugs == direct.fired_bugs

    def test_bug_set_partitions_the_key(self, programs):
        cache = DutRunCache()
        clean = make_processor("cva6", bugs=[])
        bugged = make_processor("cva6", bugs=["V5"])
        cache.get_or_run(clean, programs[0])
        cache.get_or_run(bugged, programs[0])
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_different_processors_do_not_collide(self, programs):
        cache = DutRunCache()
        cache.get_or_run(make_processor("rocket", bugs=[]), programs[0])
        cache.get_or_run(make_processor("boom", bugs=[]), programs[0])
        assert cache.misses == 2 and cache.hits == 0

    def test_eviction_bound(self, programs):
        cache = DutRunCache(max_entries=2)
        dut = make_processor("rocket", bugs=[])
        for program in programs:
            cache.get_or_run(dut, program)
        assert len(cache) <= 2
        assert cache.evictions == 1  # 3 programs through a 2-entry cache

    def test_lru_spills_least_recently_used(self, programs):
        cache = DutRunCache(max_entries=2)
        dut = make_processor("rocket", bugs=[])
        cache.get_or_run(dut, programs[0])
        cache.get_or_run(dut, programs[1])
        cache.get_or_run(dut, programs[0])  # touch 0: now 1 is LRU
        cache.get_or_run(dut, programs[2])  # spills 1, keeps 0
        hits_before = cache.hits
        cache.get_or_run(dut, programs[0])
        assert cache.hits == hits_before + 1  # 0 survived the spill
        cache.get_or_run(dut, programs[1])  # 1 was spilled: a miss
        assert cache.misses == 4

    def test_configure_shrinks_and_respills(self, programs):
        cache = DutRunCache(max_entries=8)
        dut = make_processor("rocket", bugs=[])
        for program in programs:
            cache.get_or_run(dut, program)
        cache.configure(1)
        assert len(cache) == 1
        assert cache.max_entries == 1
        assert cache.evictions == 2
        with pytest.raises(ValueError):
            cache.configure(0)

    def test_stats_and_clear(self, programs):
        cache = DutRunCache()
        dut = make_processor("rocket", bugs=[])
        cache.get_or_run(dut, programs[0])
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["entries"] == 1
        assert stats["evictions"] == 0
        cache.clear()
        assert len(cache) == 0


class TestGoldenFallback:
    def test_fallback_serves_miss_without_changing_counters(self, programs):
        shared = GoldenTraceCache()
        golden = GoldenModel()
        first = GoldenTraceCache(fallback=shared)
        result = first.get_or_run(golden, programs[0])
        assert (first.hits, first.misses) == (0, 1)
        assert shared.misses == 1  # populated through the first session

        second = GoldenTraceCache(fallback=shared)
        served = second.get_or_run(golden, programs[0])
        assert served is result  # one golden run amortized across sessions
        # The session-level counters look exactly like a cold run: where
        # the miss was served from is invisible to result metadata.
        assert (second.hits, second.misses) == (0, 1)
        assert shared.hits == 1

    def test_no_fallback_runs_the_model(self, programs):
        cache = GoldenTraceCache()
        golden = GoldenModel()
        a = cache.get_or_run(golden, programs[0])
        b = cache.get_or_run(golden, programs[0])
        assert a is b and cache.hits == 1


class TestProcessCaches:
    def test_process_caches_are_singletons(self):
        assert process_dut_cache() is process_dut_cache()
        assert isinstance(process_dut_cache(), DutRunCache)
        assert process_golden_cache() is process_golden_cache()
        assert isinstance(process_golden_cache(), GoldenTraceCache)

    def test_configure_process_caches(self):
        from repro.exec.cache import DEFAULT_CACHE_ENTRIES
        from repro.isa.compiled import process_compiled_cache

        from repro.isa.compiled import process_superblock_cache

        try:
            configure_process_caches(77)
            assert process_dut_cache().max_entries == 77
            assert process_golden_cache().max_entries == 77
            assert process_compiled_cache().max_entries == 77
            assert process_superblock_cache().max_entries == 77
        finally:
            configure_process_caches(None)  # None restores the default bound
        assert process_dut_cache().max_entries == DEFAULT_CACHE_ENTRIES
        assert process_golden_cache().max_entries == DEFAULT_CACHE_ENTRIES

    def test_process_cache_stats_keys(self):
        stats = process_cache_stats()
        assert set(stats) == {"dut_cache_hits", "dut_cache_misses",
                              "dut_cache_evictions", "shared_golden_hits",
                              "shared_golden_misses",
                              "shared_golden_evictions",
                              "compiled_trace_hits", "compiled_trace_misses",
                              "compiled_trace_evictions",
                              "superblock_hits", "superblock_misses",
                              "superblock_evictions"}

    def test_configure_spill_evictions_survive_in_batch_deltas(self):
        """Regression: re-bounding mid-grid must not lose eviction deltas.

        ``execute_batch`` snapshots counters *before* re-bounding the
        worker caches; evictions spilled by a shrinking ``--cache-entries``
        bound therefore land in that batch's delta instead of vanishing
        between two snapshots.
        """
        from repro.exec.batching import TrialTask, execute_batch, plan_batches
        from repro.fuzzing.base import FuzzerConfig
        from repro.harness.campaign import CampaignSpec

        spec = CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                            trials=1, seed=123, bugs=[],
                            fuzzer_config=FuzzerConfig(num_seeds=3,
                                                       mutants_per_test=2))
        tasks = [TrialTask(spec_index=0, trial_index=0, spec=spec)]
        try:
            # Warm the process caches well past the tiny bound below.
            [warm] = plan_batches(tasks, cache_entries=None)
            execute_batch(warm)
            assert len(process_dut_cache()) > 1
            evictions_before = process_dut_cache().evictions

            [shrunk] = plan_batches(tasks, cache_entries=1)
            payload = execute_batch(shrunk)
            spilled = process_dut_cache().evictions - evictions_before
            assert spilled > 0, "shrinking the bound must spill entries"
            # The spill is attributed to the batch that requested the bound.
            assert payload["cache_stats"]["dut_cache_evictions"] >= spilled
        finally:
            configure_process_caches(None)
