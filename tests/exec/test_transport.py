"""Unit tests for worker transports and the supervisor lifecycle.

Supervisor behaviour (crash-loop budgets, degradation, fault-plan
generation gating) is driven through a stub transport that launches
trivial ``sys.executable -c`` processes, so every test controls exactly
how its "worker" lives and dies; the end-to-end supervised-campaign
behaviour lives in ``tests/exec/test_transport_chaos.py``.
"""

import json
import subprocess
import sys
import time

import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultRule
from repro.exec.transport import (
    DEFAULT_CRASH_LOOP_BUDGET,
    LocalTransport,
    SshTransport,
    Transport,
    WorkerHandle,
    WorkerSpec,
    WorkerSupervisor,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


class ScriptTransport(Transport):
    """Ignores the supervisor's command and runs ``code`` instead."""

    def __init__(self, code="import time; time.sleep(60)"):
        self.code = code
        self.spawned = []  # (worker_id, extra_env) per launch

    def _spawn(self, command, extra_env, host, worker_id, log_path):
        self.spawned.append((worker_id, dict(extra_env)))
        process = subprocess.Popen([sys.executable, "-c", self.code])
        return WorkerHandle(process, host=host, worker_id=worker_id)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class RecordingTelemetry:
    def __init__(self):
        self.events = []

    def record(self, kind, **fields):
        self.events.append({"kind": kind, **fields})

    def kinds(self):
        return [event["kind"] for event in self.events]


def _supervisor(transport, tmp_path, hosts=("h0",), **kwargs):
    specs = [WorkerSpec(host=host, transport=transport) for host in hosts]
    return WorkerSupervisor(specs, queue_dir=str(tmp_path / "queue"), **kwargs)


def _wait_exit(supervisor, timeout=10.0):
    deadline = time.monotonic() + timeout
    while supervisor.live_workers() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not supervisor.live_workers()


class TestWorkerHandle:
    def test_alive_and_returncode(self):
        process = subprocess.Popen([sys.executable, "-c", "import sys; sys.exit(7)"])
        handle = WorkerHandle(process, host="h", worker_id="w")
        process.wait()
        assert not handle.alive()
        assert handle.returncode == 7

    def test_terminate_is_idempotent_and_bounded(self):
        process = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        handle = WorkerHandle(process, host="h", worker_id="w")
        assert handle.alive()
        handle.terminate(grace=2.0)
        assert not handle.alive()
        handle.terminate()  # second call is a no-op


class TestLocalTransport:
    def test_spawn_passes_extra_env(self, tmp_path):
        marker = tmp_path / "env.json"
        code = ("import json, os, sys; "
                f"json.dump(dict(os.environ), open({str(marker)!r}, 'w'))")
        handle = LocalTransport().spawn(
            [sys.executable, "-c", code], {"REPRO_TEST_VAR": "42"},
            host="local-0", worker_id="local-0-g0")
        assert handle.process.wait(timeout=10) == 0
        child_env = json.loads(marker.read_text())
        assert child_env["REPRO_TEST_VAR"] == "42"

    def test_dispatcher_fault_plan_does_not_leak(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "/dispatcher/plan.json")
        marker = tmp_path / "env.json"
        code = ("import json, os, sys; "
                f"json.dump(dict(os.environ), open({str(marker)!r}, 'w'))")
        handle = LocalTransport().spawn(
            [sys.executable, "-c", code], {}, host="h", worker_id="w")
        assert handle.process.wait(timeout=10) == 0
        assert faults.FAULT_PLAN_ENV not in json.loads(marker.read_text())

    def test_log_path_captures_output(self, tmp_path):
        log_path = tmp_path / "logs" / "w.log"
        handle = LocalTransport().spawn(
            [sys.executable, "-c",
             "import sys; print('out'); print('err', file=sys.stderr)"],
            {}, host="h", worker_id="w", log_path=str(log_path))
        handle.process.wait(timeout=10)
        text = log_path.read_text()
        assert "out" in text and "err" in text  # stderr folded into the log

    def test_spawn_fault_raises_oserror(self):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_SPAWN, action="oserror"),
        )).injector())
        with pytest.raises(OSError):
            LocalTransport().spawn([sys.executable, "-c", "pass"], {},
                                   host="h", worker_id="w")


class TestProbe:
    def test_probe_reflects_liveness(self):
        transport = LocalTransport()
        handle = transport.spawn(
            [sys.executable, "-c", "import time; time.sleep(60)"], {},
            host="h", worker_id="w")
        assert transport.probe(handle)
        handle.terminate()
        assert not transport.probe(handle)

    def test_down_fault_overrides_a_live_process(self):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_PROBE, action="down",
                      times=1),
        )).injector())
        transport = LocalTransport()
        handle = transport.spawn(
            [sys.executable, "-c", "import time; time.sleep(60)"], {},
            host="h", worker_id="w")
        try:
            assert not transport.probe(handle)  # fault: host "partitioned"
            assert transport.probe(handle)  # rule exhausted: healthy again
        finally:
            handle.terminate()

    def test_probe_match_targets_one_host(self):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_PROBE, action="down",
                      match=(("host", "h1"),)),
        )).injector())
        transport = LocalTransport()
        handles = [transport.spawn(
            [sys.executable, "-c", "import time; time.sleep(60)"], {},
            host=host, worker_id=f"{host}-g0") for host in ("h0", "h1")]
        try:
            assert transport.probe(handles[0])
            assert not transport.probe(handles[1])
        finally:
            for handle in handles:
                handle.terminate()


class TestSshTransport:
    def _stub(self, tmp_path):
        """A fake ``ssh`` that records its argv and exits cleanly."""
        record = tmp_path / "argv.json"
        stub = tmp_path / "ssh"
        stub.write_text(
            "#!/usr/bin/env python3\n"
            "import json, sys\n"
            f"json.dump(sys.argv[1:], open({str(record)!r}, 'w'))\n")
        stub.chmod(0o755)
        return stub, record

    def test_command_construction(self, tmp_path):
        stub, record = self._stub(tmp_path)
        transport = SshTransport(ssh_binary=str(stub),
                                 remote_pythonpath="/remote/src")
        handle = transport.spawn(
            ["python3", "-m", "repro.cli", "worker", "--queue", "/srv/q"],
            {"REPRO_FAULT_PLAN": "/plans/kill one.json"},
            host="node7", worker_id="node7-g0")
        assert handle.process.wait(timeout=10) == 0
        argv = json.loads(record.read_text())
        assert argv[:4] == ["-o", "BatchMode=yes", "-o", "ConnectTimeout=5"]
        assert argv[4] == "node7"
        remote = argv[5]
        assert remote.startswith("env ")
        assert "PYTHONPATH=/remote/src" in remote
        assert "REPRO_FAULT_PLAN='/plans/kill one.json'" in remote  # quoted
        assert remote.endswith("python3 -m repro.cli worker --queue /srv/q")

    def test_no_env_prefix_when_empty(self, tmp_path):
        stub, record = self._stub(tmp_path)
        transport = SshTransport(ssh_binary=str(stub), ssh_options=())
        handle = transport.spawn(["python3", "-V"], {}, host="n",
                                 worker_id="n-g0")
        assert handle.process.wait(timeout=10) == 0
        assert json.loads(record.read_text()) == ["n", "python3 -V"]

    def test_describe_names_the_binary(self):
        assert SshTransport().describe() == "ssh(ssh)"
        assert LocalTransport().describe() == "local"


class TestSupervisorLifecycle:
    def test_start_spawns_every_host_with_worker_command(self, tmp_path):
        transport = ScriptTransport()
        supervisor = _supervisor(transport, tmp_path, hosts=("a", "b"),
                                 worker_args=("--max-tasks", "5"))
        commands = []
        original = transport._spawn

        def capture(command, extra_env, host, worker_id, log_path):
            commands.append(list(command))
            return original(command, extra_env, host, worker_id, log_path)

        transport._spawn = capture
        supervisor.start()
        try:
            assert supervisor.live_workers() == 2
            assert [wid for wid, _env in transport.spawned] == ["a-g0", "b-g0"]
            for command in commands:
                assert command[1:3] == ["-m", "repro.cli"]
                assert "worker" in command
                assert "--max-tasks" in command
        finally:
            supervisor.drain(timeout=0.1)
        stats = supervisor.stats()
        assert stats["spawned"] == 2
        assert stats["hosts"] == 2
        assert stats["degraded_hosts"] == []

    def test_clean_exit_is_not_restarted(self, tmp_path):
        supervisor = _supervisor(ScriptTransport("raise SystemExit(0)"),
                                 tmp_path)
        telemetry = RecordingTelemetry()
        supervisor.telemetry = telemetry
        supervisor.start()
        _wait_exit(supervisor)
        supervisor.poll()
        stats = supervisor.stats()
        assert stats["clean_exits"] == 1
        assert stats["restarts"] == 0
        assert telemetry.kinds() == ["worker_spawn", "worker_exit"]
        assert telemetry.events[-1]["returncode"] == 0

    def test_crash_is_restarted_with_next_generation(self, tmp_path):
        transport = ScriptTransport("raise SystemExit(3)")
        supervisor = _supervisor(transport, tmp_path, crash_loop_budget=2)
        supervisor.start()
        _wait_exit(supervisor)
        supervisor.poll()  # reaps the crash, spawns generation 1
        assert supervisor.stats()["restarts"] == 1
        assert [wid for wid, _env in transport.spawned] == ["h0-g0", "h0-g1"]
        supervisor.drain(timeout=5.0)

    def test_crash_loop_budget_degrades_host(self, tmp_path):
        clock = FakeClock()
        transport = ScriptTransport("raise SystemExit(3)")
        supervisor = _supervisor(transport, tmp_path, crash_loop_budget=2,
                                 crash_window=60.0, clock=clock)
        telemetry = RecordingTelemetry()
        supervisor.telemetry = telemetry
        supervisor.start()
        for _ in range(5):  # more polls than the budget allows restarts
            _wait_exit(supervisor)
            supervisor.poll()
            if supervisor.all_degraded:
                break
        stats = supervisor.stats()
        assert stats["restarts"] == 2  # the budget, then degradation
        assert stats["degraded_hosts"] == ["h0"]
        assert supervisor.all_degraded
        assert telemetry.kinds().count("host_degraded") == 1
        degraded = [event for event in telemetry.events
                    if event["kind"] == "host_degraded"][0]
        assert degraded["host"] == "h0"
        assert degraded["restarts"] == 2
        # A degraded host is never respawned by later polls.
        supervisor.poll()
        assert supervisor.stats()["spawned"] == 3

    def test_crash_window_slides(self, tmp_path):
        clock = FakeClock()
        transport = ScriptTransport("raise SystemExit(3)")
        supervisor = _supervisor(transport, tmp_path, crash_loop_budget=1,
                                 crash_window=10.0, clock=clock)
        supervisor.start()
        for _ in range(4):
            _wait_exit(supervisor)
            clock.now += 11.0  # each crash lands in a fresh window
            supervisor.poll()
        stats = supervisor.stats()
        assert stats["restarts"] == 4  # old crashes aged out: no degradation
        assert stats["degraded_hosts"] == []
        supervisor.drain(timeout=5.0)

    def test_spawn_failure_consumes_the_budget(self, tmp_path):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_SPAWN, action="oserror",
                      times=1),
        )).injector())
        transport = ScriptTransport()
        supervisor = _supervisor(transport, tmp_path, crash_loop_budget=2)
        supervisor.start()  # first attempt fault-fails, retry succeeds
        try:
            stats = supervisor.stats()
            assert stats["spawn_failures"] == 1
            assert stats["spawned"] == 1
            assert supervisor.live_workers() == 1
            # The retry moved on to the next generation id.
            assert [wid for wid, _env in transport.spawned] == ["h0-g1"]
        finally:
            supervisor.drain(timeout=0.1)

    def test_persistent_spawn_failure_degrades(self, tmp_path):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_SPAWN, action="oserror",
                      times=0),
        )).injector())
        supervisor = _supervisor(ScriptTransport(), tmp_path,
                                 crash_loop_budget=2)
        supervisor.start()
        stats = supervisor.stats()
        # Generations 0 and 1 consume the budget; generation 2's failure
        # tips the host into degradation.
        assert stats["spawn_failures"] == 3
        assert stats["spawned"] == 0
        assert stats["degraded_hosts"] == ["h0"]
        assert supervisor.all_degraded

    def test_probe_down_reclaims_and_restarts(self, tmp_path):
        faults.install(FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_PROBE, action="down",
                      times=1),
        )).injector())
        transport = ScriptTransport()  # sleeps: process table says alive
        supervisor = _supervisor(transport, tmp_path)
        supervisor.start()
        supervisor.poll()  # probe reports the live worker dead
        try:
            stats = supervisor.stats()
            assert stats["probe_failures"] == 1
            assert stats["restarts"] == 1
            assert supervisor.live_workers() == 1  # generation 1 running
        finally:
            supervisor.drain(timeout=0.1)

    def test_fault_plan_exported_to_generation_zero_only(self, tmp_path):
        transport = ScriptTransport("raise SystemExit(3)")
        spec = WorkerSpec(host="h0", transport=transport,
                          fault_plan="/plans/kill.json")
        supervisor = WorkerSupervisor([spec], queue_dir=str(tmp_path / "q"),
                                      crash_loop_budget=3)
        supervisor.start()
        _wait_exit(supervisor)
        supervisor.poll()
        supervisor.drain(timeout=5.0)
        envs = {wid: env for wid, env in transport.spawned}
        assert envs["h0-g0"].get(faults.FAULT_PLAN_ENV) == "/plans/kill.json"
        assert faults.FAULT_PLAN_ENV not in envs["h0-g1"]  # restart runs clean

    def test_fault_plan_all_generations_opt_in(self, tmp_path):
        transport = ScriptTransport("raise SystemExit(3)")
        spec = WorkerSpec(host="h0", transport=transport,
                          fault_plan="/plans/kill.json",
                          fault_plan_all_generations=True)
        supervisor = WorkerSupervisor([spec], queue_dir=str(tmp_path / "q"),
                                      crash_loop_budget=3)
        supervisor.start()
        _wait_exit(supervisor)
        supervisor.poll()
        supervisor.drain(timeout=5.0)
        for _wid, env in transport.spawned:
            assert env.get(faults.FAULT_PLAN_ENV) == "/plans/kill.json"

    def test_drain_terminates_stragglers(self, tmp_path):
        supervisor = _supervisor(ScriptTransport(), tmp_path)
        telemetry = RecordingTelemetry()
        supervisor.telemetry = telemetry
        supervisor.start()
        assert supervisor.live_workers() == 1
        supervisor.drain(timeout=0.1)  # sleeper never exits on its own
        assert supervisor.live_workers() == 0
        assert "worker_exit" in telemetry.kinds()

    def test_worker_logs_land_in_log_dir(self, tmp_path):
        class EchoTransport(ScriptTransport):
            def _spawn(self, command, extra_env, host, worker_id, log_path):
                self.spawned.append((worker_id, dict(extra_env)))
                log = self._open_log(log_path)
                try:
                    process = subprocess.Popen(
                        [sys.executable, "-c", "print('worker says hi')"],
                        stdout=log, stderr=subprocess.STDOUT)
                finally:
                    if log is not subprocess.DEVNULL:
                        log.close()
                return WorkerHandle(process, host=host, worker_id=worker_id)

        log_dir = tmp_path / "logs"
        supervisor = _supervisor(EchoTransport(), tmp_path,
                                 log_dir=str(log_dir))
        supervisor.start()
        _wait_exit(supervisor)
        supervisor.poll()
        assert (log_dir / "h0-g0.log").read_text().strip() == "worker says hi"

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least one WorkerSpec"):
            WorkerSupervisor([], queue_dir=str(tmp_path))
        spec = WorkerSpec(host="h", transport=ScriptTransport())
        with pytest.raises(ValueError, match="crash_loop_budget"):
            WorkerSupervisor([spec], queue_dir=str(tmp_path),
                             crash_loop_budget=0)
        with pytest.raises(ValueError, match="crash_window"):
            WorkerSupervisor([spec], queue_dir=str(tmp_path), crash_window=0)

    def test_default_budget_constant(self):
        assert DEFAULT_CRASH_LOOP_BUDGET == 3
