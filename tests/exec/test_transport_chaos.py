"""Chaos tests for supervised transports: host death, crash loops, sink
outages.

Extends the :mod:`tests.exec.test_chaos` template to the campaign-as-a-
service layer (``docs/service.md``): the dispatcher now *owns* its
workers through a :class:`~repro.exec.transport.WorkerSupervisor` instead
of assuming someone else keeps them alive.  The oracles stay just as
sharp -- a grid that loses a supervised host mid-batch must still finish
bit-identical to serial, a crash-looping host must degrade without
hanging the grid, and a telemetry listener dying mid-campaign must cost
at most the documented sent-but-unread window.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec import (
    CampaignEngine,
    DistributedBackend,
    LocalTransport,
    SerialBackend,
    WorkerSpec,
    WorkerSupervisor,
    faults,
)
from repro.exec.faults import FaultPlan, FaultRule
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec
from repro.telemetry import TcpSink, TelemetryListener, decode_line

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


def _grid():
    return [
        CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                     trials=2, seed=23, bugs=[], fuzzer_config=SMALL_CONFIG),
        CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=6,
                     trials=2, seed=23, bugs=["V5"],
                     fuzzer_config=SMALL_CONFIG),
    ]


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


def _worker_env():
    return {"PYTHONPATH": SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", "")}


def _supervisor(queue_dir, specs, **kwargs):
    kwargs.setdefault("env", _worker_env())
    kwargs.setdefault("worker_args", ("--poll-interval", "0.05"))
    return WorkerSupervisor(specs, queue_dir=str(queue_dir), **kwargs)


def _backend(queue_dir, supervisor, **kwargs):
    kwargs.setdefault("max_attempts", 3)
    return DistributedBackend(
        str(queue_dir), poll_interval=0.05, lease_timeout=1.0,
        batch_size=1, max_wait_seconds=120.0, supervisor=supervisor,
        **kwargs)


def _kill_plan(tmp_path, name="plan.json", times=1):
    """A plan that kills the worker on its first batch pickup."""
    plan = FaultPlan(rules=(
        FaultRule(site=faults.SITE_WORKER_BATCH, action="kill", times=times),
    ))
    path = tmp_path / name
    path.write_text(json.dumps(plan.to_dict()))
    return str(path)


class TestSupervisedRecovery:
    def test_host_death_mid_batch_recovers_bit_identically(self, tmp_path):
        """Acceptance: one supervised worker's host dies mid-batch; the
        supervisor restarts it under the crash-loop budget and the grid
        finishes bit-identical to serial, with the restart visible in
        ``last_run_report["transport"]`` and the closing monitor line."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)

        queue_dir = tmp_path / "spool"
        worker_specs = [
            # The doomed host: its generation-0 worker dies on its first
            # batch pickup (the plan is not re-exported to the restart).
            WorkerSpec(host="doomed", transport=LocalTransport(),
                       fault_plan=_kill_plan(tmp_path)),
            WorkerSpec(host="steady", transport=LocalTransport()),
        ]
        supervisor = _supervisor(queue_dir, worker_specs,
                                 log_dir=str(tmp_path / "logs"))
        engine_lines = []
        engine = CampaignEngine(
            backend=_backend(queue_dir, supervisor),
            monitor=ProgressMonitor(sink=engine_lines.append))
        trialsets = engine.run_grid(specs)

        assert _canonical(trialsets) == _canonical(serial)
        report = engine.last_run_report
        assert report["quarantined_trials"] == 0
        transport = report["transport"]
        assert transport["restarts"] >= 1
        assert transport["degraded_hosts"] == []
        assert transport["spawned"] >= 3  # two hosts + one respawn
        assert transport["hosts"] == 2
        # The lost batch came back through the standard self-healing
        # path: the dead worker's claim expired and was requeued.
        assert report["robustness"].get("requeued", 0) >= 1
        closing = [line for line in engine_lines
                   if line.startswith("transport:")]
        assert len(closing) == 1
        assert "restarted" in closing[0]
        assert "0 degraded" in closing[0]

    def test_crash_looping_host_degrades_and_grid_completes(self, tmp_path):
        """Acceptance: a host whose worker dies on *every* generation
        burns its crash-loop budget, is marked degraded, and the grid
        still completes -- degraded capacity means quarantined trials,
        never a hang."""
        specs = _grid()
        queue_dir = tmp_path / "spool"
        worker_specs = [
            WorkerSpec(host="cursed", transport=LocalTransport(),
                       fault_plan=_kill_plan(tmp_path),
                       fault_plan_all_generations=True),
        ]
        supervisor = _supervisor(queue_dir, worker_specs,
                                 crash_loop_budget=2)
        engine_lines = []
        engine = CampaignEngine(
            backend=_backend(queue_dir, supervisor, max_attempts=2),
            monitor=ProgressMonitor(sink=engine_lines.append))
        trialsets = engine.run_grid(specs)

        report = engine.last_run_report
        transport = report["transport"]
        assert transport["degraded_hosts"] == ["cursed"]
        assert transport["restarts"] == 2  # the budget, then degradation
        # Every trial is accounted for: completed or quarantined, none
        # lost and no hang.
        completed = sum(sum(1 for r in ts.results if r is not None)
                        for ts in trialsets)
        total = sum(spec.trials for spec in specs)
        assert completed + report["quarantined_trials"] == total
        assert report["quarantined_trials"] > 0
        for entry in report["quarantined"]:
            assert ("no live workers" in entry["error"]
                    or "attempts" in entry["error"])
        closing = [line for line in engine_lines
                   if line.startswith("transport:")]
        assert len(closing) == 1
        assert "1 degraded (cursed)" in closing[0]

    def test_degraded_host_share_redistributes_to_survivor(self, tmp_path):
        """One host crash-loops into degradation while a healthy one
        keeps serving: the survivor absorbs the full grid and the result
        stays bit-identical to serial -- nothing quarantined."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)

        queue_dir = tmp_path / "spool"
        worker_specs = [
            WorkerSpec(host="cursed", transport=LocalTransport(),
                       fault_plan=_kill_plan(tmp_path),
                       fault_plan_all_generations=True),
            WorkerSpec(host="steady", transport=LocalTransport()),
        ]
        supervisor = _supervisor(queue_dir, worker_specs,
                                 crash_loop_budget=1)
        engine = CampaignEngine(backend=_backend(queue_dir, supervisor))
        trialsets = engine.run_grid(specs)

        assert _canonical(trialsets) == _canonical(serial)
        report = engine.last_run_report
        assert report["quarantined_trials"] == 0
        assert report["transport"]["degraded_hosts"] == ["cursed"]

    def test_telemetry_listener_outage_mid_campaign(self, tmp_path):
        """Acceptance: kill and restart the TCP listener mid-campaign.
        The campaign must not block, the grid stays bit-identical, and
        event loss is bounded by the documented sent-but-unread window
        (the spill file accounts for everything else)."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)

        queue_dir = tmp_path / "spool"
        spill = tmp_path / "spill.ndjson"
        buffer_limit = 8
        listener = TelemetryListener()
        listener.start()
        port = listener.port
        sink = TcpSink("127.0.0.1", port, buffer_limit=buffer_limit,
                       spill_path=str(spill), connect_timeout=0.1,
                       backoff=faults.Backoff(base=0.01, cap=0.05,
                                              jitter=0.0))
        supervisor = _supervisor(
            queue_dir,
            [WorkerSpec(host="w0", transport=LocalTransport()),
             WorkerSpec(host="w1", transport=LocalTransport())])
        engine = CampaignEngine(backend=_backend(queue_dir, supervisor),
                                telemetry=sink)

        # The outage window: drop the listener shortly into the run and
        # bring it back on the same port while trials are still flowing.
        def outage():
            time.sleep(0.4)
            listener.stop()
            time.sleep(0.6)
            listener.port = port
            listener.start()

        chaos = threading.Thread(target=outage)
        chaos.start()
        trialsets = engine.run_grid(specs)
        chaos.join(timeout=30)
        assert not chaos.is_alive()
        time.sleep(0.3)  # let the listener ingest the tail
        received = listener.snapshot()
        listener.stop()

        assert _canonical(trialsets) == _canonical(serial)
        telemetry = engine.last_run_report["transport"]["telemetry"]
        assert telemetry["errors"] == 0
        assert telemetry["dropped"] == 0  # spill absorbed all overflow
        assert telemetry["buffered"] == 0  # close() left nothing in limbo
        # Every recorded event is accounted as sent or spilled, and of
        # the sent ones at most one socket-buffer window died unread with
        # the first listener.
        assert telemetry["sent"] + telemetry["spilled"] == telemetry["events"]
        spilled_lines = (spill.read_bytes().splitlines()
                         if spill.exists() else [])
        assert len(spilled_lines) == telemetry["spilled"]
        lost_in_flight = telemetry["sent"] - len(received)
        assert 0 <= lost_in_flight <= buffer_limit, telemetry
        # The stream includes per-trial and lifecycle events; during the
        # outage they may have landed in the spill file instead of on the
        # wire, so account across both.
        accounted = received + [decode_line(line) for line in spilled_lines]
        kinds = [event["kind"] for event in accounted]
        assert kinds.count("trial") + lost_in_flight >= 4
        assert "run_start" in kinds or lost_in_flight > 0
        assert "worker_spawn" in kinds or lost_in_flight > 0
