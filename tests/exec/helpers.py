"""Shared helpers for the execution-subsystem tests."""

from repro.exec.backends import SerialBackend


class CountingBackend(SerialBackend):
    """Serial backend that records which (spec_index, trial) it actually ran."""

    def __init__(self):
        super().__init__()
        self.executed = []

    def run(self, tasks):
        for task, payload in super().run(tasks):
            self.executed.append((task.spec_index, task.trial_index))
            yield task, payload
