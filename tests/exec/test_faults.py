"""Tests for the deterministic fault-injection layer itself."""

import json

import pytest

from repro.exec import faults
from repro.exec.faults import Backoff, FaultInjector, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="no.such.site", action="kill")

    def test_action_must_match_site(self):
        with pytest.raises(ValueError, match="does not support"):
            FaultRule(site=faults.SITE_JOURNAL_APPEND, action="kill")

    def test_round_trip(self):
        rule = FaultRule(site=faults.SITE_WORKER_BATCH, action="delay",
                         after=2, times=3, arg=0.5,
                         match=(("task_id", "run-000001"),))
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site=faults.SITE_QUEUE_PUBLISH, action="torn"),
            FaultRule(site=faults.SITE_WORKER_TRIAL, action="kill", after=4),
        ), seed=9)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_file(str(path)) == plan

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version 99"):
            FaultPlan.from_dict({"version": 99, "rules": []})


class TestInjector:
    def test_after_and_times_window(self):
        plan = FaultPlan(rules=(FaultRule(site=faults.SITE_WORKER_BATCH,
                                          action="delay", after=2, times=2),))
        injector = FaultInjector(plan)
        fired = [bool(injector.fire(faults.SITE_WORKER_BATCH))
                 for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_times_zero_fires_forever_once_armed(self):
        plan = FaultPlan(rules=(FaultRule(site=faults.SITE_WORKER_BATCH,
                                          action="delay", after=1, times=0),))
        injector = FaultInjector(plan)
        fired = [bool(injector.fire(faults.SITE_WORKER_BATCH))
                 for _ in range(4)]
        assert fired == [False, True, True, True]

    def test_match_filters_context(self):
        plan = FaultPlan(rules=(FaultRule(
            site=faults.SITE_WORKER_BATCH, action="delay",
            match=(("task_id", "run-000002"),)),))
        injector = FaultInjector(plan)
        assert not injector.fire(faults.SITE_WORKER_BATCH,
                                 task_id="run-000001")
        assert injector.fire(faults.SITE_WORKER_BATCH, task_id="run-000002")
        # Non-matching hits do not advance the rule's counter.
        assert injector.fired_log == [
            (faults.SITE_WORKER_BATCH, "delay", {"task_id": "run-000002"})]

    def test_deterministic_across_instances(self):
        plan = FaultPlan(rules=(FaultRule(site=faults.SITE_QUEUE_CLAIM,
                                          action="backdate", after=3),))
        sequence = [bool(FaultInjector(plan).fire(faults.SITE_QUEUE_CLAIM))
                    for _ in range(1)]
        for _ in range(3):
            injector = FaultInjector(plan)
            replay = [bool(injector.fire(faults.SITE_QUEUE_CLAIM))
                      for _ in range(1)]
            assert replay == sequence

    def test_global_hook_is_noop_until_installed(self):
        assert faults.fire(faults.SITE_WORKER_BATCH) == ()
        plan = FaultPlan(rules=(FaultRule(site=faults.SITE_WORKER_BATCH,
                                          action="delay"),))
        faults.install(plan.injector())
        assert faults.fire(faults.SITE_WORKER_BATCH)
        faults.uninstall()
        assert faults.fire(faults.SITE_WORKER_BATCH) == ()

    def test_install_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan().to_dict()))
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        assert faults.install_from_env() is None
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(path))
        assert faults.install_from_env() is not None
        assert faults.installed() is not None

    def test_oserror_action_raises_injected_error(self):
        rule = FaultRule(site=faults.SITE_QUEUE_PUBLISH, action="oserror")
        with pytest.raises(faults.InjectedError):
            faults.perform(rule)
        assert issubclass(faults.InjectedError, OSError)


class TestServiceSites:
    """The transport/telemetry sites ride the same plan machinery."""

    SITES = {
        faults.SITE_TRANSPORT_SPAWN: ("oserror", "delay"),
        faults.SITE_TRANSPORT_PROBE: ("down", "delay"),
        faults.SITE_SINK_CONNECT: ("oserror", "delay"),
        faults.SITE_SINK_WRITE: ("oserror", "delay"),
    }

    def test_actions_registered_per_site(self):
        for site, actions in self.SITES.items():
            for action in actions:
                FaultRule(site=site, action=action)  # does not raise
            with pytest.raises(ValueError, match="does not support"):
                FaultRule(site=site, action="torn")
        # ``down`` stays exclusive to the probe site.
        with pytest.raises(ValueError, match="does not support"):
            FaultRule(site=faults.SITE_TRANSPORT_SPAWN,
                      action=faults.ACTION_DOWN)

    def test_plan_serialization_round_trip_with_windows(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_SPAWN, action="oserror",
                      after=1, times=2),
            FaultRule(site=faults.SITE_TRANSPORT_PROBE, action="down",
                      times=1, match=(("host", "node7"),)),
            FaultRule(site=faults.SITE_SINK_CONNECT, action="delay",
                      arg=0.25, after=3),
            FaultRule(site=faults.SITE_SINK_WRITE, action="oserror",
                      match=(("sink", "tcp"),)),
        ), seed=7)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        restored = FaultPlan.from_file(str(path))
        assert restored == plan
        assert [rule.site for rule in restored.rules] == [
            faults.SITE_TRANSPORT_SPAWN, faults.SITE_TRANSPORT_PROBE,
            faults.SITE_SINK_CONNECT, faults.SITE_SINK_WRITE]

    def test_after_times_window_applies_at_new_sites(self):
        plan = FaultPlan(rules=(FaultRule(
            site=faults.SITE_SINK_CONNECT, action="oserror",
            after=1, times=2),))
        injector = FaultInjector(plan)
        fired = [bool(injector.fire(faults.SITE_SINK_CONNECT))
                 for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_context_match_filters_hosts_and_sinks(self):
        plan = FaultPlan(rules=(
            FaultRule(site=faults.SITE_TRANSPORT_PROBE, action="down",
                      times=0, match=(("host", "node7"),)),
            FaultRule(site=faults.SITE_SINK_WRITE, action="oserror",
                      times=0, match=(("sink", "tcp"),)),
        ))
        injector = FaultInjector(plan)
        assert not injector.fire(faults.SITE_TRANSPORT_PROBE, host="node1")
        assert injector.fire(faults.SITE_TRANSPORT_PROBE, host="node7")
        # A file sink's writes never match a tcp-scoped rule.
        assert not injector.fire(faults.SITE_SINK_WRITE, sink="file")
        assert injector.fire(faults.SITE_SINK_WRITE, sink="tcp")

    def test_sites_are_independent(self):
        plan = FaultPlan(rules=(FaultRule(
            site=faults.SITE_SINK_WRITE, action="oserror", times=1),))
        injector = FaultInjector(plan)
        assert not injector.fire(faults.SITE_SINK_CONNECT)
        assert not injector.fire(faults.SITE_TRANSPORT_SPAWN)
        assert injector.fire(faults.SITE_SINK_WRITE)


class TestCorruptBytes:
    def test_torn_keeps_a_strict_prefix(self):
        data = b'{"kind": "trial", "result": {"coverage": 12}}\n'
        torn = faults.corrupt_bytes(
            data, FaultRule(site=faults.SITE_JOURNAL_APPEND, action="torn"))
        assert torn == data[: len(data) // 2]

    def test_corrupt_damages_interior_but_keeps_length_and_newline(self):
        data = b'{"kind": "trial", "result": {"coverage": 12}}\n'
        bad = faults.corrupt_bytes(
            data, FaultRule(site=faults.SITE_JOURNAL_APPEND, action="corrupt"))
        assert bad != data
        assert len(bad) == len(data)
        assert bad.endswith(b"\n")


class TestBackoff:
    def test_grows_exponentially_to_cap(self):
        backoff = Backoff(base=1.0, cap=4.0, factor=2.0, jitter=0.0)
        assert [backoff.next() for _ in range(4)] == [1.0, 2.0, 4.0, 4.0]

    def test_reset_returns_to_base(self):
        backoff = Backoff(base=1.0, jitter=0.0)
        backoff.next()
        backoff.next()
        backoff.reset()
        assert backoff.next() == 1.0

    def test_attempt_tracks_schedule_position(self):
        """Regression for the reset-on-success contract: a long-lived
        per-site instance must decay back to base once an outage clears,
        not keep paying the escalated delay forever."""
        backoff = Backoff(base=1.0, factor=2.0, jitter=0.0)
        assert backoff.attempt == 0
        delays = [backoff.next() for _ in range(3)]
        assert delays == [1.0, 2.0, 4.0]
        assert backoff.attempt == 3
        backoff.reset()  # the success path every caller must hit
        assert backoff.attempt == 0
        assert backoff.next() == 1.0  # not 8.0: the outage is over

    def test_default_cap_is_sixteen_times_base(self):
        backoff = Backoff(base=0.25, jitter=0.0)
        assert max(backoff.next() for _ in range(10)) == 4.0

    def test_jitter_is_bounded_and_seed_deterministic(self):
        delays = [Backoff(base=1.0, jitter=0.25, seed=11).next()
                  for _ in range(3)]
        assert len(set(delays)) == 1  # same seed, same schedule
        assert 0.75 <= delays[0] <= 1.25
        other = Backoff(base=1.0, jitter=0.25, seed=12).next()
        assert other != delays[0]

    def test_stable_seed_is_stable(self):
        assert faults.stable_seed("w0") == faults.stable_seed("w0")
        assert faults.stable_seed("w0") != faults.stable_seed("w1")

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(base=0.0)
        with pytest.raises(ValueError):
            Backoff(base=1.0, factor=0.5)
        with pytest.raises(ValueError):
            Backoff(base=1.0, jitter=1.0)
