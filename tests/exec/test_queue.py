"""Tests for the spool-directory work queue (no campaigns involved)."""

import json
import os

from repro.exec.queue import SpoolQueue


def _queue(tmp_path):
    return SpoolQueue(str(tmp_path / "spool")).ensure()


class TestEnqueueClaim:
    def test_claim_empty_queue(self, tmp_path):
        assert _queue(tmp_path).claim("w0") is None

    def test_claim_returns_payload_and_moves_file(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"kind": "batch", "batch": 0})
        claim = queue.claim("w0")
        assert claim is not None
        assert claim.task_id == "t0"
        assert claim.payload["batch"] == 0
        assert queue.pending_count() == 0
        assert queue.claimed_count() == 1
        assert os.path.basename(claim.path).endswith(".w0")

    def test_oldest_task_claimed_first(self, tmp_path):
        queue = _queue(tmp_path)
        for index in range(3):
            queue.enqueue(f"t{index}", {"index": index})
        assert queue.claim("w0").task_id == "t0"
        assert queue.claim("w0").task_id == "t1"

    def test_two_claimants_cannot_share_a_task(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        first = queue.claim("w0")
        second = queue.claim("w1")
        assert first is not None
        assert second is None


class TestCompleteCollect:
    def test_result_round_trip(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        assert queue.collect("t0") is None
        queue.complete(claim, {"results": [1, 2, 3]})
        assert queue.collect("t0") == {"results": [1, 2, 3]}
        assert queue.claimed_count() == 0

    def test_complete_after_requeue_is_harmless(self, tmp_path):
        # Lease expired, the task was requeued, then the original (slow,
        # not dead) worker finished anyway: its claim file is gone but the
        # result must still land.
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        os.utime(claim.path, (1, 1))
        assert queue.requeue_stale(lease_timeout=1.0) == ["t0"]
        queue.complete(claim, {"done": True})
        assert queue.collect("t0") == {"done": True}
        assert queue.pending_count() == 1  # the requeued copy still exists

    def test_results_are_written_atomically(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        queue.complete(queue.claim("w0"), {"big": "x" * 4096})
        # No temp droppings left behind, and the file parses whole.
        assert all(not name.startswith(".")
                   for name in os.listdir(queue.results_dir))
        with open(os.path.join(queue.results_dir, "t0.json")) as handle:
            assert json.load(handle)["big"]


class TestRequeueStale:
    def test_fresh_claims_are_left_alone(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        queue.claim("w0")
        assert queue.requeue_stale(lease_timeout=60.0) == []
        assert queue.claimed_count() == 1

    def test_lease_clock_starts_at_claim_time(self, tmp_path):
        # A batch may sit in tasks/ far longer than the lease before a
        # worker frees up (rename preserves mtime); claiming must restart
        # the clock or a busy grid would requeue every in-flight batch.
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        task_path = os.path.join(queue.tasks_dir, "t0.json")
        os.utime(task_path, (1, 1))  # enqueued "ages" ago
        queue.claim("w0")
        assert queue.requeue_stale(lease_timeout=60.0) == []
        assert queue.claimed_count() == 1

    def test_stale_claim_returns_to_pending(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        os.utime(claim.path, (1, 1))
        assert queue.requeue_stale(lease_timeout=5.0) == ["t0"]
        assert queue.pending_count() == 1
        rescued = queue.claim("w1")
        assert rescued.task_id == "t0"
        # The requeue bumped the retry envelope; the original payload rides
        # along untouched.
        assert rescued.payload == {"index": 0, "attempts": 1}
        assert rescued.attempts == 1


class TestDiscardAndSweep:
    def test_discard_task_and_result(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {})
        assert queue.discard_task("t0")
        assert not queue.discard_task("t0")  # already gone (or claimed)
        queue.enqueue("t1", {})
        queue.complete(queue.claim("w0"), {"done": True})
        assert queue.discard_result("t1")
        assert queue.stats() == {"pending": 0, "claimed": 0, "results": 0,
                                 "deadletter": 0}

    def test_sweep_removes_only_ancient_results(self, tmp_path):
        queue = _queue(tmp_path)
        for task_id in ("old", "new"):
            queue.enqueue(task_id, {})
            queue.complete(queue.claim("w0"), {})
        old_path = os.path.join(queue.results_dir, "old.json")
        os.utime(old_path, (1, 1))
        assert queue.sweep_stale_results(older_than=3600.0) == ["old"]
        assert queue.collect("new") == {}
        assert queue.collect("old") is None


class TestStopSentinel:
    def test_stop_round_trip(self, tmp_path):
        queue = _queue(tmp_path)
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()
        queue.clear_stop()  # idempotent

    def test_stats(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {})
        queue.enqueue("t1", {})
        queue.complete(queue.claim("w0"), {})
        assert queue.stats() == {"pending": 1, "claimed": 0, "results": 1,
                                 "deadletter": 0}


class TestHeartbeat:
    def test_heartbeat_renews_the_lease(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        os.utime(claim.path, (1, 1))  # the claim "aged" past any lease
        assert claim.heartbeat()
        assert queue.requeue_stale(lease_timeout=5.0) == []
        assert queue.claimed_count() == 1

    def test_heartbeat_reports_a_lost_claim(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        os.utime(claim.path, (1, 1))
        assert queue.requeue_stale(lease_timeout=1.0) == ["t0"]
        assert not claim.heartbeat()  # the file moved back to tasks/


class TestRetryBudget:
    def test_requeue_respects_payload_budget(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0}, attempts=0, max_attempts=2)
        for expected_attempts in (1,):
            claim = queue.claim("w0")
            os.utime(claim.path, (1, 1))
            assert queue.requeue_stale(lease_timeout=1.0) == ["t0"]
            assert queue.claim("w1").attempts == expected_attempts
        # Attempt 2 of 2: the budget is spent, so the next expiry
        # quarantines instead of requeueing.
        claim_path = os.path.join(queue.claimed_dir, "t0.json.w1")
        os.utime(claim_path, (1, 1))
        assert queue.requeue_stale(lease_timeout=1.0) == []
        assert queue.pending_count() == 0
        assert queue.deadletter_ids() == ["t0"]
        record = queue.read_deadletter("t0")
        assert record["attempts"] == 2
        assert "lease expired" in record["error"]
        assert record["payload"]["index"] == 0

    def test_requeue_budget_fallback_argument(self, tmp_path):
        # Tasks enqueued without a budget use the sweeper's fallback.
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        os.utime(claim.path, (1, 1))
        assert queue.requeue_stale(lease_timeout=1.0, max_attempts=1) == []
        assert queue.deadletter_ids() == ["t0"]

    def test_unreadable_claim_is_quarantined_immediately(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        claim = queue.claim("w0")
        with open(claim.path, "w", encoding="utf-8") as handle:
            handle.write("{half a record")
        os.utime(claim.path, (1, 1))
        assert queue.requeue_stale(lease_timeout=1.0) == []
        assert queue.deadletter_ids() == ["t0"]
        assert "unreadable" in queue.read_deadletter("t0")["error"]

    def test_discard_deadletter(self, tmp_path):
        queue = _queue(tmp_path)
        queue.quarantine("t0", payload={}, attempts=3, error="boom")
        assert queue.discard_deadletter("t0")
        assert not queue.discard_deadletter("t0")
        assert queue.deadletter_ids() == []


class TestCorruptResults:
    def test_collect_turns_torn_result_into_error_payload(self, tmp_path):
        queue = _queue(tmp_path)
        with open(os.path.join(queue.results_dir, "t0.json"), "w") as handle:
            handle.write('{"results": [1, 2')  # torn mid-write
        payload = queue.collect("t0")
        assert payload["corrupt"]
        assert "t0" in payload["error"]

    def test_collect_turns_non_object_result_into_error_payload(self, tmp_path):
        queue = _queue(tmp_path)
        with open(os.path.join(queue.results_dir, "t0.json"), "w") as handle:
            handle.write('[1, 2, 3]')
        assert queue.collect("t0")["corrupt"]


class TestRaceTolerance:
    def test_requeue_tolerates_claims_vanishing_mid_scan(self, tmp_path):
        # Another sweeper (or the completing worker) removes the claim
        # between the directory scan and our rename: not an error.
        queue = _queue(tmp_path)
        queue.enqueue("t0", {"index": 0})
        queue.enqueue("t1", {"index": 1})
        for worker in ("w0", "w1"):
            claim = queue.claim(worker)
            os.utime(claim.path, (1, 1))
        real_rename = os.rename
        yanked = {}

        def racing_rename(src, dst):
            # First stale claim: simulate a concurrent sweeper winning.
            if ".requeue." in os.path.basename(dst) and not yanked:
                yanked["path"] = src
                os.unlink(src)
            return real_rename(src, dst)

        os.rename = racing_rename
        try:
            requeued = queue.requeue_stale(lease_timeout=1.0)
        finally:
            os.rename = real_rename
        assert len(requeued) == 1  # the surviving claim; no exception
        assert queue.deadletter_ids() == []

    def test_sweep_tolerates_results_vanishing_mid_scan(self, tmp_path):
        queue = _queue(tmp_path)
        queue.enqueue("t0", {})
        queue.complete(queue.claim("w0"), {})
        old_path = os.path.join(queue.results_dir, "t0.json")
        os.utime(old_path, (1, 1))
        real_getmtime = os.path.getmtime

        def racing_getmtime(path):
            if path == old_path:
                os.unlink(old_path)  # collected by its dispatcher just now
                raise FileNotFoundError(path)
            return real_getmtime(path)

        os.path.getmtime = racing_getmtime
        try:
            removed = queue.sweep_stale_results(older_than=3600.0)
        finally:
            os.path.getmtime = real_getmtime
        assert removed == []  # no exception, nothing double-counted

    def test_sweep_removes_ancient_scratch_files(self, tmp_path):
        queue = _queue(tmp_path)
        scratch = os.path.join(queue.claimed_dir, ".requeue.t0.json.w0.dead")
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write("{}")
        os.utime(scratch, (1, 1))
        queue.sweep_stale_results(older_than=3600.0)
        assert not os.path.exists(scratch)


class _SpyBackoff:
    """Records the delay schedule the publish path actually consumed."""

    def __init__(self):
        from repro.exec import faults

        self._inner = faults.Backoff(base=0.001, cap=0.002, jitter=0.0)
        self.delays = []

    def next(self):
        delay = self._inner.next()
        self.delays.append(delay)
        return delay

    def sleep(self):
        self.next()  # skip the real time.sleep: tests only track the schedule

    def reset(self):
        self._inner.reset()

    @property
    def attempt(self):
        return self._inner.attempt


class TestPublishBackoff:
    def test_queue_owns_one_long_lived_instance(self, tmp_path):
        queue = _queue(tmp_path)
        backoff = queue._publish_backoff
        queue.enqueue("t0", {"kind": "batch"})
        queue.request_stop()
        assert queue._publish_backoff is backoff  # per-site, not per-call

    def test_backoff_decays_after_outage_clears(self, tmp_path):
        """Regression: a publish outage escalates the shared schedule, and
        the success that ends it must reset the schedule so the *next*
        outage pays the base delay again, not the inflated leftover."""
        queue = _queue(tmp_path)
        spy = _SpyBackoff()
        queue._publish_backoff = spy

        queue.enqueue("t0", {"kind": "batch"})  # clean publish: no delays
        assert spy.delays == []

        path = os.path.join(queue.tasks_dir, "t1.task.json")
        queue._publish(path, {"kind": "batch"}, fail_first=2)
        assert spy.delays == [0.001, 0.002]  # escalated during the outage
        assert spy.attempt == 0  # the success reset the schedule

        queue._publish(os.path.join(queue.tasks_dir, "t2.task.json"),
                       {"kind": "batch"}, fail_first=1)
        # Second outage starts from base again -- the decay under test.
        assert spy.delays[-1] == 0.001
