"""Backend tests, including the serial-vs-parallel determinism guarantee."""

import pytest

from repro.exec.backends import (
    ProcessPoolBackend,
    SerialBackend,
    TrialTask,
    execute_trial,
)
from repro.exec.engine import run_grid
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


def _grid():
    """A small heterogeneous grid: two processors, two fuzzer families."""
    return [
        CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=8,
                     trials=2, seed=5, bugs=[], fuzzer_config=SMALL_CONFIG),
        CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=8,
                     trials=2, seed=5, bugs=["V5"], fuzzer_config=SMALL_CONFIG),
    ]


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


class TestBackendValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_recycle_must_be_positive(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, max_tasks_per_child=0)

    def test_recycling_avoids_fork(self):
        backend = ProcessPoolBackend(workers=2, max_tasks_per_child=1)
        assert backend.start_method in ("forkserver", "spawn")

    def test_explicit_fork_with_recycling_rejected_early(self):
        with pytest.raises(ValueError, match="fork"):
            ProcessPoolBackend(workers=2, max_tasks_per_child=1,
                               start_method="fork")

    def test_describe(self):
        assert "serial" in SerialBackend().describe()
        assert "2 workers" in ProcessPoolBackend(workers=2).describe()


class TestExecuteTrial:
    def test_returns_serialized_payload(self):
        spec = _grid()[0]
        spec_index, trial_index, payload = execute_trial(TrialTask(0, 1, spec))
        assert (spec_index, trial_index) == (0, 1)
        assert isinstance(payload, dict)
        assert payload["dut_name"] == "rocket"
        assert payload["metadata"]["trial"] == 1


class TestPoolAbort:
    def test_worker_error_propagates_without_draining_grid(self):
        # An unknown processor makes the worker raise on its first trial;
        # the backend must surface the error promptly (pending futures are
        # cancelled, not run to completion) rather than swallow it.
        bad = CampaignSpec(processor="rocket", fuzzer="no-such-fuzzer",
                           num_tests=8, trials=4, seed=1, bugs=[],
                           fuzzer_config=SMALL_CONFIG)
        backend = ProcessPoolBackend(workers=1)
        tasks = [TrialTask(0, trial, bad) for trial in range(4)]
        with pytest.raises(KeyError):
            for _ in backend.run(tasks):
                pass

    def test_abandoning_the_generator_is_clean(self):
        spec = _grid()[0]
        backend = ProcessPoolBackend(workers=1)
        tasks = [TrialTask(0, trial, spec) for trial in range(3)]
        stream = backend.run(tasks)
        next(stream)
        stream.close()  # queued trials are cancelled, no hang, no error


class TestSerialVsParallelDeterminism:
    """The subsystem's hard requirement: backends cannot change results."""

    def test_process_pool_matches_serial_bit_for_bit(self):
        specs = _grid()
        serial = run_grid(specs, backend=SerialBackend())
        parallel = run_grid(specs, backend=ProcessPoolBackend(workers=4))
        assert _canonical(parallel) == _canonical(serial)

    def test_worker_recycling_preserves_determinism(self):
        specs = _grid()[:1]
        serial = run_grid(specs, backend=SerialBackend())
        recycled = run_grid(specs, backend=ProcessPoolBackend(
            workers=2, max_tasks_per_child=1))
        assert _canonical(recycled) == _canonical(serial)

    def test_serial_rerun_is_reproducible(self):
        specs = _grid()[:1]
        first = run_grid(specs, backend=SerialBackend())
        second = run_grid(specs, backend=SerialBackend())
        assert _canonical(first) == _canonical(second)

    def test_batch_shape_cannot_change_results(self):
        # One trial per batch, unbounded batches and the default grouping
        # must all be bit-identical: batching is pure scheduling.
        specs = _grid()
        reference = run_grid(specs, backend=SerialBackend())
        for batch_size in (1, None):
            shaped = run_grid(specs,
                              backend=SerialBackend(batch_size=batch_size))
            assert _canonical(shaped) == _canonical(reference)

    def test_tiny_cache_capacity_cannot_change_results(self):
        # cache_entries=1 forces constant LRU spill in the process caches;
        # results (including the metadata counters) must not move.
        specs = _grid()
        reference = run_grid(specs, backend=SerialBackend())
        starved = run_grid(specs, backend=SerialBackend(), cache_entries=1)
        assert _canonical(starved) == _canonical(reference)


class TestBackendBatching:
    def test_cache_stats_accumulate_over_run(self):
        backend = SerialBackend()
        specs = _grid()[:1]
        list(backend.run([TrialTask(0, trial, specs[0])
                          for trial in range(2)]))
        assert "dut_cache_misses" in backend.cache_stats
        total = (backend.cache_stats["dut_cache_hits"]
                 + backend.cache_stats["dut_cache_misses"])
        assert total > 0

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            SerialBackend(batch_size=0)

    def test_invalid_cache_entries_rejected(self):
        with pytest.raises(ValueError):
            SerialBackend(cache_entries=0)

    def test_empty_task_list_is_a_noop(self):
        backend = SerialBackend()
        assert list(backend.run([])) == []
