"""Tests for the JSONL checkpoint journal and grid resume."""

import json
import multiprocessing

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec.backends import SerialBackend
from repro.exec.checkpoint import CheckpointJournal, record_checksum
from repro.exec.engine import CampaignEngine
from repro.fuzzing.base import FuzzerConfig
from repro.fuzzing.results import FuzzCampaignResult
from repro.harness.campaign import CampaignSpec

from tests.exec.helpers import CountingBackend


def _spec(trials=3):
    return CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=8,
                        trials=trials, seed=7, bugs=[],
                        fuzzer_config=FuzzerConfig(num_seeds=3, mutants_per_test=2))


class TestJournal:
    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "nothing.jsonl"))
        assert journal.load() == {}

    def test_trial_round_trip(self, tmp_path):
        spec = _spec()
        result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                    num_tests=8, coverage_count=3,
                                    metadata={"trial": 0, "seed": 42})
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            journal.record_grid([spec])
            journal.record_trial(spec, 0, result)
        loaded = CheckpointJournal(path).load()
        assert loaded[(spec.fingerprint(), 0)].canonical_dict() == result.canonical_dict()

    def test_trial_accepts_preserialized_payload(self, tmp_path):
        # The engine journals the backend's payload dict directly (no
        # second to_dict pass); both forms must load identically.
        spec = _spec()
        result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                    num_tests=8, coverage_count=2)
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            journal.record_trial(spec, 0, result)
            journal.record_trial(spec, 1, result.to_dict())
        loaded = CheckpointJournal(path).load()
        assert (loaded[(spec.fingerprint(), 0)].canonical_dict()
                == loaded[(spec.fingerprint(), 1)].canonical_dict())

    def test_torn_tail_line_is_skipped(self, tmp_path):
        spec = _spec()
        result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                    num_tests=8)
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            journal.record_trial(spec, 0, result)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "trial", "spec": "dead')  # kill mid-append
        assert set(CheckpointJournal(path).load()) == {(spec.fingerprint(), 0)}

    def test_unknown_kinds_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"kind": "future-extension"}) + "\n")
        assert CheckpointJournal(str(path)).load() == {}

    def test_incompatible_journal_version_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"kind": "grid", "version": 99,
                                    "specs": []}) + "\n")
        with pytest.raises(ValueError, match="version 99"):
            CheckpointJournal(str(path)).load()


def _append_trials(path: str, start: int, count: int) -> None:
    """Worker for the concurrent-writer test (module-level: picklable)."""
    spec = _spec()
    result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                num_tests=8, coverage_count=1)
    with CheckpointJournal(path) as journal:
        for trial in range(start, start + count):
            journal.record_trial(spec, trial, result)


class TestConcurrentWriters:
    def test_two_processes_appending_never_tear_records(self, tmp_path):
        # Two distributed dispatchers may share one journal; every record
        # is a single O_APPEND write, so lines interleave whole.  Repeat a
        # few times to give interleaving a real chance to happen.
        path = str(tmp_path / "journal.jsonl")
        count = 40
        context = multiprocessing.get_context("fork")
        writers = [context.Process(target=_append_trials,
                                   args=(path, side * count, count))
                   for side in range(2)]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        loaded = CheckpointJournal(path).load()
        fingerprint = _spec().fingerprint()
        assert set(loaded) == {(fingerprint, trial)
                               for trial in range(2 * count)}
        # Every line in the file is whole (parses on its own).
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)

    def test_concurrent_journal_tolerates_a_torn_tail_too(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        _append_trials(path, 0, 3)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "trial", "spec": "half')  # killed mid-append
        _append_trials(path, 3, 2)  # a second writer appends after the tear
        loaded = CheckpointJournal(path).load()
        fingerprint = _spec().fingerprint()
        # The torn line is skipped, and it also swallows the next record
        # glued onto it (trial 3) -- an accepted loss: that trial simply
        # re-runs on resume.  Everything else survives.
        assert set(loaded) == {(fingerprint, trial) for trial in (0, 1, 2, 4)}


class TestResume:
    def test_interrupted_grid_resumes_without_rerunning(self, tmp_path):
        spec = _spec(trials=3)
        path = str(tmp_path / "grid.jsonl")
        reference = CampaignEngine(backend=SerialBackend(),
                                   checkpoint_path=path).run_grid([spec])[0]

        # Simulate a kill after two completed trials: keep header + 2 lines.
        lines = open(path).read().splitlines(True)
        with open(path, "w") as handle:
            handle.writelines(lines[:3])

        backend = CountingBackend()
        monitor = ProgressMonitor()
        resumed = CampaignEngine(backend=backend, checkpoint_path=path,
                                 monitor=monitor).run_grid([spec])[0]
        assert backend.executed == [(0, 2)]  # only the lost trial re-ran
        assert monitor.restored_trials == 2
        assert resumed.is_complete
        assert ([r.canonical_dict() for r in resumed.results]
                == [r.canonical_dict() for r in reference.results])

    def test_changed_spec_does_not_match_old_trials(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        CampaignEngine(checkpoint_path=path).run_grid([_spec(trials=1)])
        changed = CampaignSpec(processor="rocket", fuzzer="thehuzz",
                               num_tests=9, trials=1, seed=7, bugs=[],
                               fuzzer_config=FuzzerConfig(num_seeds=3,
                                                          mutants_per_test=2))
        backend = CountingBackend()
        CampaignEngine(backend=backend, checkpoint_path=path).run_grid([changed])
        assert backend.executed == [(0, 0)]  # fingerprint mismatch -> re-run

    def test_extending_trial_count_reuses_journaled_trials(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        CampaignEngine(checkpoint_path=path).run_grid([_spec(trials=2)])
        backend = CountingBackend()
        extended = CampaignEngine(backend=backend,
                                  checkpoint_path=path).run_grid(
                                      [_spec(trials=3)])[0]
        assert backend.executed == [(0, 2)]  # only the new trial runs
        assert extended.is_complete

    def test_completed_grid_runs_nothing(self, tmp_path):
        spec = _spec(trials=2)
        path = str(tmp_path / "grid.jsonl")
        CampaignEngine(checkpoint_path=path).run_grid([spec])
        backend = CountingBackend()
        trialset = CampaignEngine(backend=backend,
                                  checkpoint_path=path).run_grid([spec])[0]
        assert backend.executed == []
        assert trialset.num_trials == 2


class TestChecksumSalvage:
    def _write_journal(self, path, trials=3):
        spec = _spec()
        result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                    num_tests=8, coverage_count=1)
        with CheckpointJournal(path) as journal:
            for trial in range(trials):
                journal.record_trial(spec, trial, result)
        return spec

    def test_records_carry_checksums(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._write_journal(path, trials=1)
        with open(path, encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        assert record["check"] == record_checksum(record)

    def test_corrupt_interior_record_is_dropped_and_counted(self, tmp_path):
        # The nasty case: the record still parses as JSON, but its content
        # silently changed -- only the checksum can catch it.
        path = str(tmp_path / "journal.jsonl")
        spec = self._write_journal(path, trials=3)
        lines = open(path, encoding="utf-8").read().splitlines()
        middle = json.loads(lines[1])
        middle["trial"] = 99  # flipped after the checksum was computed
        lines[1] = json.dumps(middle, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        journal = CheckpointJournal(path)
        loaded = journal.load()
        assert set(loaded) == {(spec.fingerprint(), t) for t in (0, 2)}
        assert journal.last_load_stats == {
            "loaded": 2, "dropped": 1, "dropped_undecodable": 0,
            "dropped_checksum": 1, "dropped_malformed": 0}

    def test_undecodable_interior_record_is_dropped_and_counted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        spec = self._write_journal(path, trials=3)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn interior record
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        journal = CheckpointJournal(path)
        loaded = journal.load()
        assert set(loaded) == {(spec.fingerprint(), t) for t in (0, 2)}
        assert journal.last_load_stats["dropped_undecodable"] == 1

    def test_legacy_records_without_checksum_still_load(self, tmp_path):
        spec = _spec()
        result = FuzzCampaignResult(fuzzer_name="thehuzz", dut_name="rocket",
                                    num_tests=8)
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"kind": "trial",
                                    "spec": spec.fingerprint(), "trial": 0,
                                    "result": result.to_dict()}) + "\n")
        journal = CheckpointJournal(str(path))
        assert set(journal.load()) == {(spec.fingerprint(), 0)}
        assert journal.last_load_stats == {
            "loaded": 1, "dropped": 0, "dropped_undecodable": 0,
            "dropped_checksum": 0, "dropped_malformed": 0}

    def test_malformed_trial_record_is_dropped_and_counted(self, tmp_path):
        record = {"kind": "trial", "spec": "s", "trial": "not-an-int"}
        record["check"] = record_checksum(record)
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        journal = CheckpointJournal(str(path))
        assert journal.load() == {}
        assert journal.last_load_stats["dropped_malformed"] == 1

    def test_engine_reruns_trials_lost_to_corruption(self, tmp_path):
        # End-to-end: a corrupted journal record re-runs its trial on
        # resume and the damage count surfaces in the engine's report.
        spec = _spec(trials=3)
        path = str(tmp_path / "grid.jsonl")
        reference = CampaignEngine(backend=SerialBackend(),
                                   checkpoint_path=path).run_grid([spec])[0]
        lines = open(path, encoding="utf-8").read().splitlines()
        damaged = json.loads(lines[2])
        damaged["trial"] = 77  # breaks the checksum
        lines[2] = json.dumps(damaged, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        backend = CountingBackend()
        engine = CampaignEngine(backend=backend, checkpoint_path=path)
        resumed = engine.run_grid([spec])[0]
        assert len(backend.executed) == 1  # exactly the damaged trial
        assert resumed.is_complete
        assert ([r.canonical_dict() for r in resumed.results]
                == [r.canonical_dict() for r in reference.results])
        assert engine.last_run_report["journal_salvage"]["dropped"] == 1
