"""End-to-end tests of the distributed backend with real worker processes.

These spawn ``repro.cli worker`` subprocesses against a temporary spool
directory -- exactly what a multi-container deployment does, minus the
shared network filesystem.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.monitor import ProgressMonitor
from repro.exec import (
    CampaignEngine,
    DistributedBackend,
    SerialBackend,
    SpoolQueue,
    run_worker,
)
from repro.exec.batching import TrialBatch, TrialTask, batch_to_wire
from repro.fuzzing.base import FuzzerConfig
from repro.harness.campaign import CampaignSpec

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
SMALL_CONFIG = FuzzerConfig(num_seeds=3, mutants_per_test=2)


def _grid():
    return [
        CampaignSpec(processor="rocket", fuzzer="thehuzz", num_tests=6,
                     trials=2, seed=17, bugs=[], fuzzer_config=SMALL_CONFIG),
        CampaignSpec(processor="cva6", fuzzer="mabfuzz:ucb", num_tests=6,
                     trials=2, seed=17, bugs=["V5"],
                     fuzzer_config=SMALL_CONFIG),
    ]


def _canonical(trialsets):
    return [[r.canonical_dict() for r in ts.results] for ts in trialsets]


def _start_worker(queue_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--queue",
         str(queue_dir), "--poll-interval", "0.05", *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _backend(queue_dir, **overrides):
    options = {"poll_interval": 0.05, "max_wait_seconds": 120.0,
               "stop_workers_on_exit": True}
    options.update(overrides)
    return DistributedBackend(str(queue_dir), **options)


class TestDistributedDeterminism:
    def test_two_workers_match_serial_bit_for_bit(self, tmp_path):
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)
        queue_dir = tmp_path / "spool"
        workers = [_start_worker(queue_dir), _start_worker(queue_dir)]
        try:
            backend = _backend(queue_dir, batch_size=1)  # spread the load
            distributed = CampaignEngine(backend=backend).run_grid(specs)
        finally:
            for worker in workers:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    raise
        assert _canonical(distributed) == _canonical(serial)
        # STOP sentinel written, queue drained, results consumed.
        queue = SpoolQueue(str(queue_dir))
        assert queue.stop_requested()
        assert queue.stats() == {"pending": 0, "claimed": 0, "results": 0,
                                 "deadletter": 0}

    def test_kill_and_reattach_worker_mid_grid(self, tmp_path):
        """A worker dies holding a claim; a later worker rescues the batch."""
        specs = _grid()
        serial = CampaignEngine(backend=SerialBackend()).run_grid(specs)
        queue_dir = tmp_path / "spool"
        journal = tmp_path / "grid.jsonl"
        backend = _backend(queue_dir, batch_size=1, lease_timeout=1.0)
        engine = CampaignEngine(backend=backend, checkpoint_path=str(journal))
        outcome = {}

        def dispatch():
            outcome["trialsets"] = engine.run_grid(specs)

        dispatcher = threading.Thread(target=dispatch)
        dispatcher.start()
        # Pose as a worker that claims a batch and is then SIGKILLed: the
        # claim file stays behind with no process attached to it.
        queue = SpoolQueue(str(queue_dir))
        claim = None
        deadline = time.monotonic() + 30.0
        while claim is None and time.monotonic() < deadline:
            claim = queue.claim("doomed-worker")
            if claim is None:
                time.sleep(0.02)
        assert claim is not None, "dispatcher never enqueued work"
        os.utime(claim.path, (1, 1))  # the kill happened long ago

        worker = _start_worker(queue_dir)  # re-attach a live worker
        dispatcher.join(timeout=120)
        assert not dispatcher.is_alive()
        worker.wait(timeout=60)
        assert _canonical(outcome["trialsets"]) == _canonical(serial)

        # The journal now holds the whole grid: a resumed distributed run
        # restores everything and never touches the queue again.
        resumed_backend = _backend(tmp_path / "fresh-spool")
        monitor = ProgressMonitor()
        resumed = CampaignEngine(backend=resumed_backend,
                                 checkpoint_path=str(journal),
                                 monitor=monitor).run_grid(specs)
        assert monitor.restored_trials == sum(s.trials for s in specs)
        assert _canonical(resumed) == _canonical(serial)
        # Nothing was enqueued (no worker served fresh-spool), and the
        # restored run still released any fleet watching the queue.
        fresh = SpoolQueue(str(tmp_path / "fresh-spool"))
        assert fresh.stats() == {"pending": 0, "claimed": 0, "results": 0,
                                 "deadletter": 0}
        assert fresh.stop_requested()


class TestWorkerLoop:
    def test_worker_drains_then_stops_on_sentinel(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool")).ensure()
        spec = _grid()[0]
        batch = TrialBatch(index=0, tasks=(TrialTask(0, 0, spec),))
        queue.enqueue("run-000000", batch_to_wire(batch))
        queue.request_stop()  # already set: worker must still drain the task
        executed = run_worker(str(tmp_path / "spool"), worker_id="w0",
                              poll_interval=0.01)
        assert executed == 1
        assert queue.collect("run-000000")["results"][0]["trial_index"] == 0

    def test_worker_max_tasks_bounds_execution(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool")).ensure()
        spec = _grid()[0]
        for index in range(2):
            batch = TrialBatch(index=index,
                               tasks=(TrialTask(0, index, spec),))
            queue.enqueue(f"run-{index:06d}", batch_to_wire(batch))
        executed = run_worker(str(tmp_path / "spool"), worker_id="w0",
                              poll_interval=0.01, max_tasks=1)
        assert executed == 1
        assert queue.pending_count() == 1

    def test_poisoned_batch_reports_error_and_worker_survives(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool")).ensure()
        queue.enqueue("run-000000", {"kind": "batch", "batch": 0,
                                     "tasks": "not-a-list"})
        queue.request_stop()
        executed = run_worker(str(tmp_path / "spool"), worker_id="w0",
                              poll_interval=0.01)
        assert executed == 1
        assert "error" in queue.collect("run-000000")

    def test_failing_batch_is_quarantined_not_raised(self, tmp_path):
        # A batch that fails on every execution burns its retry budget and
        # lands in deadletter/; the grid completes (with the batch reported
        # as lost) instead of raising mid-stream or requeueing forever.
        bad = CampaignSpec(processor="rocket", fuzzer="no-such-fuzzer",
                           num_tests=6, trials=1, seed=3, bugs=[],
                           fuzzer_config=SMALL_CONFIG)
        queue_dir = tmp_path / "spool"
        worker = _start_worker(queue_dir)
        try:
            backend = _backend(queue_dir, max_attempts=2)
            results = list(backend.run([TrialTask(0, 0, bad)]))
        finally:
            worker.wait(timeout=60)
        assert results == []
        assert backend.robustness_stats["retried"] == 1
        assert backend.robustness_stats["deadlettered"] == 1
        assert len(backend.quarantined) == 1  # quarantined exactly once
        entry = backend.quarantined[0]
        assert "no-such-fuzzer" in entry["error"]
        assert entry["tasks"] == [(0, 0)]
        record = SpoolQueue(str(queue_dir)).read_deadletter(entry["task_id"])
        assert record is not None
        assert "no-such-fuzzer" in record["error"]
        assert record["attempts"] == 2

    def test_empty_grid_still_writes_stop_sentinel(self, tmp_path):
        # A fully journal-restored grid submits zero tasks; --stop-workers
        # must still release the attached fleet.
        backend = _backend(tmp_path / "spool")
        assert list(backend.run([])) == []
        assert SpoolQueue(str(tmp_path / "spool")).stop_requested()

    def test_dispatcher_clears_leftover_stop_sentinel(self, tmp_path):
        # Grid 1 ended with --stop-workers; reusing the spool for grid 2
        # must not make freshly attached workers exit immediately.
        queue_dir = tmp_path / "spool"
        queue = SpoolQueue(str(queue_dir)).ensure()
        queue.request_stop()
        engine = CampaignEngine(backend=_backend(queue_dir))
        outcome = {}

        def dispatch():
            outcome["trialsets"] = engine.run_grid(_grid()[:1])

        dispatcher = threading.Thread(target=dispatch)
        dispatcher.start()
        deadline = time.monotonic() + 30.0
        while queue.stop_requested() and time.monotonic() < deadline:
            time.sleep(0.02)  # wait for the dispatcher to clear the sentinel
        assert not queue.stop_requested()
        worker = _start_worker(queue_dir)
        dispatcher.join(timeout=120)
        assert not dispatcher.is_alive()
        worker.wait(timeout=60)
        assert outcome["trialsets"][0].is_complete

    def test_timeout_without_workers(self, tmp_path):
        backend = _backend(tmp_path / "spool", max_wait_seconds=0.3,
                           stop_workers_on_exit=False)
        spec = _grid()[0]
        with pytest.raises(TimeoutError, match="stalled"):
            for _ in backend.run([TrialTask(0, 0, spec)]):
                pass
