"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.processor == "cva6"
        assert args.fuzzer == "mabfuzz:ucb"
        assert args.tests == 400

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "gamma", "--tests", "50"])
        assert args.which == "gamma"
        assert args.tests == 50
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cva6" in output
        assert "mabfuzz:exp3" in output
        assert "CWE-1281" in output

    def test_fuzz_small_campaign(self, capsys, tmp_path):
        output_file = tmp_path / "fuzz.txt"
        code = main(["fuzz", "--processor", "rocket", "--fuzzer", "thehuzz",
                     "--tests", "8", "--seeds", "2", "--output", str(output_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "thehuzz on rocket" in printed
        assert output_file.read_text().strip() in printed

    def test_ablation_small(self, capsys):
        code = main(["ablation", "arms", "--tests", "6", "--trials", "1",
                     "--seeds", "2", "--mutants", "2"])
        assert code == 0
        assert "num_arms" in capsys.readouterr().out
