"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.processor == "cva6"
        assert args.fuzzer == "mabfuzz:ucb"
        assert args.tests == 400

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "gamma", "--tests", "50"])
        assert args.which == "gamma"
        assert args.tests == 50
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_execution_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.workers == 1
        assert args.resume is None
        assert args.max_tasks_per_child is None

    def test_execution_flags_on_grid_commands(self):
        for command in (["table1"], ["coverage"], ["report"],
                        ["ablation", "gamma"]):
            args = build_parser().parse_args(
                command + ["--workers", "4", "--resume", "grid.jsonl",
                           "--max-tasks-per-child", "8"])
            assert args.workers == 4
            assert args.resume == "grid.jsonl"
            assert args.max_tasks_per_child == 8

    def test_fuzz_has_no_workers_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--workers", "2"])

    def test_recycling_without_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--max-tasks-per-child", "4"])

    def test_nonpositive_workers_rejected(self):
        for workers in ("0", "-2"):
            with pytest.raises(SystemExit, match="--workers must be"):
                main(["ablation", "arms", "--tests", "6", "--trials", "1",
                      "--workers", workers])

    def test_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["table1", "--backend", "distributed", "--queue", "spool",
             "--stop-workers", "--batch-size", "8", "--cache-entries", "512"])
        assert args.backend == "distributed"
        assert args.queue == "spool"
        assert args.stop_workers
        assert args.batch_size == 8
        assert args.cache_entries == 512

    def test_distributed_requires_queue(self):
        with pytest.raises(SystemExit, match="--queue"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--backend", "distributed"])

    def test_queue_requires_distributed_backend(self):
        with pytest.raises(SystemExit, match="--backend distributed"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--queue", "spool"])

    def test_distributed_rejects_pool_recycling_flag(self):
        with pytest.raises(SystemExit, match="worker --max-tasks"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--backend", "distributed", "--queue", "spool",
                  "--max-tasks-per-child", "8"])

    def test_negative_batch_size_rejected_up_front(self):
        with pytest.raises(SystemExit, match="--batch-size"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--batch-size", "-2"])

    def test_nonpositive_cache_entries_rejected_up_front(self):
        with pytest.raises(SystemExit, match="--cache-entries"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--cache-entries", "0"])

    def test_serial_backend_rejects_workers(self):
        with pytest.raises(SystemExit, match="incompatible"):
            main(["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--backend", "serial", "--workers", "3"])

    def test_worker_command_parses(self):
        args = build_parser().parse_args(
            ["worker", "--queue", "spool", "--max-tasks", "3",
             "--worker-id", "w7", "--poll-interval", "0.5"])
        assert args.queue == "spool"
        assert args.max_tasks == 3
        assert args.worker_id == "w7"
        with pytest.raises(SystemExit):  # --queue is required
            build_parser().parse_args(["worker"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cva6" in output
        assert "mabfuzz:exp3" in output
        assert "CWE-1281" in output

    def test_fuzz_small_campaign(self, capsys, tmp_path):
        output_file = tmp_path / "fuzz.txt"
        code = main(["fuzz", "--processor", "rocket", "--fuzzer", "thehuzz",
                     "--tests", "8", "--seeds", "2", "--output", str(output_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "thehuzz on rocket" in printed
        assert output_file.read_text().strip() in printed

    def test_ablation_small(self, capsys):
        code = main(["ablation", "arms", "--tests", "6", "--trials", "1",
                     "--seeds", "2", "--mutants", "2"])
        assert code == 0
        assert "num_arms" in capsys.readouterr().out

    def test_ablation_parallel_matches_serial(self, capsys, tmp_path):
        common = ["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--seeds", "2", "--mutants", "2"]
        assert main(common) == 0
        serial_out = capsys.readouterr().out
        assert main(common + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_ablation_resume_journal(self, capsys, tmp_path):
        journal = tmp_path / "ablation.jsonl"
        common = ["ablation", "arms", "--tests", "6", "--trials", "1",
                  "--seeds", "2", "--mutants", "2", "--resume", str(journal)]
        assert main(common) == 0
        first = capsys.readouterr()
        assert journal.exists()
        assert main(common) == 0  # second run restores every trial
        second = capsys.readouterr()
        assert second.out == first.out
        assert "restored from checkpoint" in second.err


class TestTrapCommands:
    def test_fuzz_scenario_and_coverage_model_flags(self, capsys):
        code = main(["fuzz", "--processor", "rocket", "--fuzzer", "mabfuzz:ucb",
                     "--tests", "8", "--seeds", "2", "--scenario", "mixed",
                     "--coverage-model", "csr"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "csr transitions covered:" in printed

    def test_fuzz_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--scenario", "kernel"])

    def test_trapcov_parses_execution_flags(self):
        args = build_parser().parse_args(
            ["trapcov", "--tests", "6", "--workers", "2",
             "--scenarios", "user", "mixed"])
        assert args.workers == 2
        assert args.scenarios == ["user", "mixed"]

    def test_trapcov_small_run(self, capsys, tmp_path):
        output_file = tmp_path / "trapcov.txt"
        code = main(["trapcov", "--processors", "rocket", "--tests", "6",
                     "--trials", "1", "--seeds", "2", "--mutants", "2",
                     "--scenarios", "mixed", "--output", str(output_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "CSR transitions" in printed
        assert output_file.read_text().strip() in printed

    def test_trapcov_parallel_matches_serial(self, capsys):
        common = ["trapcov", "--processors", "rocket", "--tests", "6",
                  "--trials", "1", "--seeds", "2", "--mutants", "2",
                  "--scenarios", "user", "trap"]
        assert main(common) == 0
        serial_out = capsys.readouterr().out
        assert main(common + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out


class TestServiceFlags:
    def test_fleet_and_telemetry_flags_parse(self):
        args = build_parser().parse_args(
            ["report", "--backend", "distributed", "--queue", "spool",
             "--spawn-workers", "2", "--worker-hosts", "node1", "node2",
             "--crash-loop-budget", "5", "--worker-fault-plan", "plan.json",
             "--telemetry", "tcp:127.0.0.1:9900",
             "--telemetry-spill", "spill.ndjson"])
        assert args.spawn_workers == 2
        assert args.worker_hosts == ["node1", "node2"]
        assert args.crash_loop_budget == 5
        assert args.worker_fault_plan == "plan.json"
        assert args.telemetry == "tcp:127.0.0.1:9900"
        assert args.telemetry_spill == "spill.ndjson"

    def test_fleet_flags_require_distributed_backend(self):
        with pytest.raises(SystemExit, match="--backend distributed"):
            main(["report", "--spawn-workers", "2"])

    def test_fault_plan_requires_a_fleet(self):
        with pytest.raises(SystemExit, match="--spawn-workers"):
            main(["report", "--backend", "distributed", "--queue", "spool",
                  "--worker-fault-plan", "plan.json"])

    def test_telemetry_spill_requires_telemetry(self):
        with pytest.raises(SystemExit, match="--telemetry-spill requires"):
            main(["report", "--telemetry-spill", "spill.ndjson"])

    def test_bad_telemetry_spec_rejected(self):
        with pytest.raises(ValueError, match="expected tcp:HOST:PORT"):
            main(["report", "--telemetry", "tcp:nohost"])

    def test_telemetry_serve_parses(self):
        args = build_parser().parse_args(
            ["telemetry", "serve", "--host", "0.0.0.0", "--port", "9900",
             "--log", "events.ndjson"])
        assert args.action == "serve"
        assert (args.host, args.port, args.log) == (
            "0.0.0.0", 9900, "events.ndjson")


class TestDeadletterCommand:
    def _quarantine(self, tmp_path, task_id="run-000001", payload=None):
        from repro.exec import SpoolQueue

        queue = SpoolQueue(str(tmp_path / "spool")).ensure()
        if payload is None:
            payload = {"kind": "batch", "attempts": 2, "max_attempts": 3,
                       "tasks": [[0, 0], [0, 1]]}
        queue.quarantine(task_id, payload=payload, attempts=2,
                         error="worker died holding the claim")
        return queue

    def test_list_empty(self, capsys, tmp_path):
        from repro.exec import SpoolQueue

        SpoolQueue(str(tmp_path / "spool")).ensure()
        assert main(["deadletter", "list", "--queue",
                     str(tmp_path / "spool")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_list_shows_summary_lines(self, capsys, tmp_path):
        queue = self._quarantine(tmp_path)
        assert main(["deadletter", "list", "--queue", queue.root]) == 0
        output = capsys.readouterr().out
        assert "1 quarantined batch(es)" in output
        assert "run-000001: attempts=2 trials=2" in output
        assert "worker died holding the claim" in output

    def test_show_dumps_the_record(self, capsys, tmp_path):
        import json

        queue = self._quarantine(tmp_path)
        assert main(["deadletter", "show", "run-000001",
                     "--queue", queue.root]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["error"] == "worker died holding the claim"
        assert record["payload"]["kind"] == "batch"

    def test_requeue_restores_a_fresh_envelope(self, capsys, tmp_path):
        queue = self._quarantine(tmp_path)
        assert main(["deadletter", "requeue", "run-000001",
                     "--queue", queue.root]) == 0
        assert "requeued run-000001" in capsys.readouterr().out
        assert queue.deadletter_ids() == []
        claim = queue.claim("w0")
        assert claim is not None
        assert claim.task_id == "run-000001"
        assert claim.payload["attempts"] == 0  # fresh retry envelope
        assert claim.payload["max_attempts"] == 3  # original budget kept

    def test_requeue_max_attempts_override(self, tmp_path):
        queue = self._quarantine(tmp_path)
        assert main(["deadletter", "requeue", "run-000001", "--queue",
                     queue.root, "--max-attempts", "9"]) == 0
        assert queue.claim("w0").payload["max_attempts"] == 9

    def test_requeue_refuses_non_batch_payloads(self, tmp_path):
        queue = self._quarantine(tmp_path, payload={"kind": "mystery"})
        with pytest.raises(SystemExit, match="refusing to requeue"):
            main(["deadletter", "requeue", "run-000001",
                  "--queue", queue.root])
        assert queue.deadletter_ids() == ["run-000001"]  # record untouched

    def test_discard_with_all(self, capsys, tmp_path):
        queue = self._quarantine(tmp_path)
        self._quarantine(tmp_path, task_id="run-000002")
        assert main(["deadletter", "discard", "--all",
                     "--queue", queue.root]) == 0
        assert queue.deadletter_ids() == []

    def test_mutating_actions_require_a_target(self, tmp_path):
        queue = self._quarantine(tmp_path)
        with pytest.raises(SystemExit, match="requires TASK_ID or --all"):
            main(["deadletter", "requeue", "--queue", queue.root])

    def test_unknown_task_id_rejected(self, tmp_path):
        queue = self._quarantine(tmp_path)
        with pytest.raises(SystemExit, match="no deadletter record"):
            main(["deadletter", "show", "run-999999", "--queue", queue.root])
