"""Legacy setup shim.

The build environment used for the reproduction has no ``wheel`` package and
no network access, so editable installs fall back to
``pip install -e . --no-build-isolation --no-use-pep517``, which requires
this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
