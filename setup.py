"""Package metadata and installation.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) because the build
environment used for the reproduction has no ``wheel`` package and no
network access: editable installs there fall back to
``pip install -e . --no-build-isolation --no-use-pep517``, which requires
this file to be self-contained.

CI installs ``.[test]`` -- the pinned toolchain the workflows run with.
"""

from setuptools import find_packages, setup

setup(
    name="mabfuzz-repro",
    version="0.4.0",
    description=("Reproduction of MABFuzz: multi-armed-bandit scheduling "
                 "for hardware fuzzing, with a parallel/distributed "
                 "campaign execution engine and trap/CSR-transition "
                 "coverage scenarios"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=[
        "numpy>=1.26",
    ],
    extras_require={
        # Pinned so every CI job runs the same toolchain; bump deliberately.
        "test": [
            "numpy==2.4.6",
            "pytest==9.0.3",
            "pytest-benchmark==5.2.3",
            "hypothesis==6.155.2",
        ],
        "lint": [
            "ruff==0.12.5",
        ],
        # Only the CI coverage job needs the plugin; keeping it out of
        # [test] keeps the other jobs' environments byte-identical.
        "cov": [
            "pytest-cov==7.0.0",
        ],
    },
    entry_points={
        "console_scripts": [
            "mabfuzz=repro.cli:main",
        ],
    },
)
