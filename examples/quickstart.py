#!/usr/bin/env python3
"""Quickstart: fuzz a RISC-V processor model with MABFuzz in ~20 lines.

Runs a short MABFuzz (UCB) campaign against the CVA6 model with the paper's
vulnerabilities injected, then prints coverage progress and any detected
bugs.

Usage::

    python examples/quickstart.py [--tests 300] [--fuzzer mabfuzz:ucb]
"""

from __future__ import annotations

import argparse

from repro import available_fuzzers, available_processors, quick_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--processor", default="cva6", choices=available_processors())
    parser.add_argument("--fuzzer", default="mabfuzz:ucb", choices=available_fuzzers())
    parser.add_argument("--tests", type=int, default=300,
                        help="number of test programs to run (default: 300)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    args = parser.parse_args()

    print(f"Fuzzing {args.processor} with {args.fuzzer} for {args.tests} tests ...")
    result = quick_campaign(processor=args.processor, fuzzer=args.fuzzer,
                            num_tests=args.tests, seed=args.seed)

    print()
    print(result.summary())
    print()
    print("Coverage progress (tests -> covered branch points):")
    step = max(1, args.tests // 10)
    for test_index in range(step - 1, args.tests, step):
        print(f"  {test_index + 1:6d} -> {result.coverage_at(test_index)}")

    if result.bug_detections:
        print("\nDetected vulnerabilities:")
        for bug_id, detection in sorted(result.bug_detections.items()):
            print(f"  {bug_id}: after {detection.tests_to_detection} tests "
                  f"(test program {detection.program_id})")
    else:
        print("\nNo vulnerabilities detected at this campaign size; "
              "try more tests or a different seed.")


if __name__ == "__main__":
    main()
