#!/usr/bin/env python3
"""Plugging a custom MAB algorithm into MABFuzz (the "agnostic" claim).

The paper stresses that MABFuzz works with *any* MAB algorithm.  This example
implements a Thompson-sampling-style policy (Beta posteriors over a
"produced new coverage" Bernoulli signal, reset-aware) that the library does
not ship, plugs it into ``MABFuzz`` unchanged, and compares it against the
built-in UCB scheduler and TheHuzz on the Rocket model.

Usage::

    python examples/custom_bandit.py [--tests 300]
"""

from __future__ import annotations

import argparse

from repro.api import make_fuzzer, make_processor
from repro.core.bandit.base import BanditAlgorithm
from repro.core.config import MABFuzzConfig
from repro.core.mabfuzz import MABFuzz
from repro.fuzzing.base import FuzzerConfig


class ThompsonSamplingBandit(BanditAlgorithm):
    """Beta-Bernoulli Thompson sampling over "did this pull find new coverage".

    Rewards are continuous (the α-weighted coverage counts), so they are
    binarised: any positive reward counts as a success.  Resetting an arm
    restores its uninformative Beta(1, 1) prior -- the same spirit as the
    paper's reset modification for ε-greedy/UCB.
    """

    name = "thompson"

    def __init__(self, num_arms: int, rng=None) -> None:
        super().__init__(num_arms, rng)
        self.successes = [1.0] * num_arms
        self.failures = [1.0] * num_arms

    def select(self) -> int:
        samples = [self.rng.beta(self.successes[a], self.failures[a])
                   for a in range(self.num_arms)]
        return int(max(range(self.num_arms), key=samples.__getitem__))

    def update(self, arm: int, reward: float) -> None:
        self._record_pull(arm)
        if reward > 0:
            self.successes[arm] += 1.0
        else:
            self.failures[arm] += 1.0

    def reset_arm(self, arm: int) -> None:
        self._check_arm(arm)
        self.successes[arm] = 1.0
        self.failures[arm] = 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    fuzzer_config = FuzzerConfig(num_seeds=10, mutants_per_test=4)
    mab_config = MABFuzzConfig()

    results = {}

    # Baseline: TheHuzz and the built-in UCB variant via the factory API.
    for name in ("thehuzz", "mabfuzz:ucb"):
        dut = make_processor("rocket", bugs=[])
        fuzzer = make_fuzzer(name, dut, fuzzer_config=fuzzer_config,
                             mab_config=mab_config, rng=args.seed)
        results[name] = fuzzer.run(args.tests)

    # The custom policy: pass the instance straight to MABFuzz.
    dut = make_processor("rocket", bugs=[])
    custom = MABFuzz(dut,
                     algorithm=ThompsonSamplingBandit(mab_config.num_arms,
                                                      rng=args.seed),
                     mab_config=mab_config, config=fuzzer_config, rng=args.seed)
    results[custom.name] = custom.run(args.tests)

    print(f"\nCoverage after {args.tests} tests on rocket:")
    for name, result in sorted(results.items(), key=lambda kv: -kv[1].coverage_count):
        print(f"  {name:18s} {result.coverage_count:5d} points "
              f"({result.coverage_percent:.1f}%)")
    print("\nAny object implementing select/update/reset_arm drops into MABFuzz "
          "without touching the fuzzing loop.")


if __name__ == "__main__":
    main()
