#!/usr/bin/env python3
"""Coverage campaign: reproduce the shape of Fig. 3 / Fig. 4 at small scale.

Runs TheHuzz and the three MABFuzz variants on the selected processors and
prints the coverage-versus-tests curves (ASCII) plus the end-of-campaign
coverage speedup and increment of each MAB algorithm over TheHuzz.

Usage::

    python examples/coverage_campaign.py [--tests 400] [--processors cva6 rocket]
"""

from __future__ import annotations

import argparse

from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.harness.experiments import (
    ExperimentConfig,
    figure3_series,
    figure4_summary,
    run_coverage_study,
)
from repro.harness.figures import render_figure3
from repro.harness.tables import render_figure4_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=400)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--processors", nargs="+", default=["cva6", "rocket", "boom"],
                        choices=["cva6", "rocket", "boom"])
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    config = ExperimentConfig(
        num_tests=args.tests,
        trials=args.trials,
        seed=args.seed,
        algorithms=("egreedy", "ucb", "exp3"),
        processors=tuple(args.processors),
        fuzzer_config=FuzzerConfig(num_seeds=10, mutants_per_test=4),
        mab_config=MABFuzzConfig(),
    )

    total_campaigns = len(config.processors) * 4 * config.trials
    print(f"Running {total_campaigns} campaigns of {config.num_tests} tests each ...")
    study = run_coverage_study(config)

    print()
    print(render_figure3(figure3_series(study)))
    print()
    print(render_figure4_table(figure4_summary(study)))
    print("\nPaper shape to look for: MABFuzz curves at or above TheHuzz on "
          "CVA6/Rocket, converging curves on BOOM, largest speedup on CVA6.")


if __name__ == "__main__":
    main()
