#!/usr/bin/env python3
"""Ablating the γ-window reset threshold (footnote 1 / Sec. IV-A of the paper).

Sweeps γ (including "no resets at all") on the CVA6 model and reports the
end-of-campaign coverage and V5/V6 detection times, showing why the paper's
reset-arms modification matters: with resets disabled, depleted seeds keep
being scheduled.

Usage::

    python examples/gamma_ablation.py [--tests 300] [--gammas 1 3 5 none]
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.core.config import MABFuzzConfig
from repro.fuzzing.base import FuzzerConfig
from repro.harness.experiments import ExperimentConfig, run_gamma_ablation
from repro.harness.tables import render_ablation_table


def _parse_gamma(token: str) -> Optional[int]:
    return None if token.lower() in ("none", "off") else int(token)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=300)
    parser.add_argument("--algorithm", default="ucb", choices=("egreedy", "ucb", "exp3"))
    parser.add_argument("--gammas", nargs="+", default=["1", "3", "5", "10", "none"])
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    gammas = tuple(_parse_gamma(token) for token in args.gammas)
    config = ExperimentConfig(
        num_tests=args.tests,
        trials=1,
        seed=args.seed,
        algorithms=(args.algorithm,),
        fuzzer_config=FuzzerConfig(num_seeds=10, mutants_per_test=4),
        mab_config=MABFuzzConfig(),
    )

    print(f"Sweeping gamma over {gammas} with MABFuzz:{args.algorithm} on cva6 ...")
    results = run_gamma_ablation(config, gammas=gammas, processor="cva6",
                                 algorithm=args.algorithm)

    print()
    print(render_ablation_table(results, parameter_name="gamma", bug_id="V6"))
    print("\n'gamma = None' disables the paper's reset-arms feature; small gamma "
          "explores aggressively, large gamma digs deeper per seed.")


if __name__ == "__main__":
    main()
